//! Shard engines: one [`BlockCache`](pc_cache::BlockCache) plus one
//! virtual disk-array timeline per shard, advanced in virtual time.
//!
//! The service hash-partitions `(disk, block)` across shards, so each
//! shard owns an independent cache partition *and* an independent
//! energy timeline over its own replica of the disk array. Cluster
//! totals are the sum of the per-shard books; the paper's batch
//! experiments remain the ground truth for single-timeline energy.

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

use pc_sim::{OnlineStepper, PolicySpec, SimConfig, StepOutcome};
use pc_trace::{IoOp, Record, Trace};
use pc_units::{BlockId, BlockNo, DiskId, SimDuration, SimTime};
use rustc_hash::FxHasher;

use crate::data::{BlockStore, ReadOutcome};
use crate::protocol::DEFAULT_BLOCK_BYTES;
use crate::stats::{ClusterSnapshot, ShardSnapshot};

/// Default per-shard admission-queue bound, in requests: four reader
/// batches' worth, so a single bursty connection cannot park more than
/// a few milliseconds of work in front of a shard while still leaving
/// headroom for several concurrent connections.
pub const DEFAULT_QUEUE_BOUND: usize = 4096;

/// The replacement policies an online server can run: every policy in
/// the workspace except the offline ones (Belady and OPG need the
/// future trace).
pub const ONLINE_POLICIES: &[&str] = &[
    "lru", "fifo", "arc", "mq", "lirs", "2q", "pa-lru", "pa-arc", "pa-mq", "pa-lirs", "pa-2q",
];

/// Parses an online policy name into its [`PolicySpec`].
///
/// Power-aware wrapper parameters are derived from the power model at
/// build time, so the spec carries a placeholder config that
/// [`EngineConfig::build_policy`] replaces.
#[must_use]
pub fn online_policy(name: &str) -> Option<PolicySpec> {
    use pc_cache::policy::PaLruConfig;
    match name {
        "lru" => Some(PolicySpec::Lru),
        "fifo" => Some(PolicySpec::Fifo),
        "arc" => Some(PolicySpec::Arc),
        "mq" => Some(PolicySpec::Mq),
        "lirs" => Some(PolicySpec::Lirs),
        "2q" => Some(PolicySpec::TwoQ),
        "pa-lru" => Some(PolicySpec::PaLru),
        "pa-arc" => Some(PolicySpec::PaArc(PaLruConfig::default())),
        "pa-mq" => Some(PolicySpec::PaMq(PaLruConfig::default())),
        "pa-lirs" => Some(PolicySpec::PaLirs(PaLruConfig::default())),
        "pa-2q" => Some(PolicySpec::PaTwoQ(PaLruConfig::default())),
        // The adaptive meta-policy wraps the 11 fixed policies above; it
        // stays out of ONLINE_POLICIES so fixed-policy sweeps don't
        // recurse into it.
        "meta" => Some(PolicySpec::Meta),
        _ => None,
    }
}

/// Parses a write-policy name: `write-back`, `write-through`, `wtdu`,
/// or `wbeu[:dirty_limit]` (default limit 64).
#[must_use]
pub fn parse_write_policy(name: &str) -> Option<pc_cache::WritePolicy> {
    use pc_cache::WritePolicy;
    match name {
        "write-back" | "wb" => Some(WritePolicy::WriteBack),
        "write-through" | "wt" => Some(WritePolicy::WriteThrough),
        "wtdu" => Some(WritePolicy::Wtdu),
        "wbeu" => Some(WritePolicy::Wbeu { dirty_limit: 64 }),
        _ => name.strip_prefix("wbeu:").and_then(|n| {
            n.parse()
                .ok()
                .map(|dirty_limit| WritePolicy::Wbeu { dirty_limit })
        }),
    }
}

/// Routes a block to its shard: FxHash of `(disk, block)` modulo the
/// shard count. Multi-block requests route by their first block, so a
/// request never straddles shards.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn shard_of(disk: DiskId, block: BlockNo, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    let mut h = FxHasher::default();
    disk.index().hash(&mut h);
    block.number().hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Debug fault injection: delay every request on one shard so the
/// overload/backpressure path becomes deterministically reachable in
/// tests and CI (`--slow-shard IDX:MICROS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowShard {
    /// Index of the shard to slow down.
    pub shard: usize,
    /// Added service delay per request, in microseconds.
    pub micros: u64,
}

/// Parses a `--slow-shard IDX:MICROS` value (e.g. `0:500`).
#[must_use]
pub fn parse_slow_shard(s: &str) -> Option<SlowShard> {
    let (shard, micros) = s.split_once(':')?;
    Some(SlowShard {
        shard: shard.parse().ok()?,
        micros: micros.parse().ok()?,
    })
}

/// Configuration shared by every shard of a cluster.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shards.
    pub shards: usize,
    /// Disks in each shard's virtual array (client disk indices are
    /// reduced modulo this).
    pub disks: u32,
    /// Replacement policy (must be online).
    pub policy: PolicySpec,
    /// Simulator configuration (cache capacity *per shard*, write
    /// policy, DPM, disk model).
    pub sim: SimConfig,
    /// Per-shard admission-queue bound in requests; a full queue
    /// answers `BUSY` instead of buffering.
    pub queue_bound: usize,
    /// Optional per-request delay injected into one shard (fault
    /// injection for overload tests).
    pub slow_shard: Option<SlowShard>,
    /// Event-loop IO threads multiplexing connections (0 = pick from
    /// available parallelism). Ignored on the legacy path.
    pub io_threads: usize,
    /// Serve with the pre-event-loop thread-per-connection front-end
    /// (differential testing and non-epoll hosts).
    pub legacy_threads: bool,
    /// Payload bytes per block served by the data plane (protocol v2
    /// `READ_DATA`/`WRITE_DATA`). Metadata-only traffic never touches
    /// the slab, so this costs nothing until data frames arrive.
    pub block_bytes: usize,
    /// Debug fault injection: flip one slab byte before every Nth
    /// verified payload read (0 = never) so CRC detection is
    /// deterministically testable (`--corrupt-rate`).
    pub corrupt_every: u64,
}

impl EngineConfig {
    /// A cluster of `shards` shards over `disks` disks, LRU write-back
    /// with the paper's default simulator configuration.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `disks` is zero.
    #[must_use]
    pub fn new(shards: usize, disks: u32) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(disks > 0, "need at least one disk");
        EngineConfig {
            shards,
            disks,
            policy: PolicySpec::Lru,
            sim: SimConfig::default(),
            queue_bound: DEFAULT_QUEUE_BOUND,
            slow_shard: None,
            io_threads: 0,
            legacy_threads: false,
            block_bytes: DEFAULT_BLOCK_BYTES,
            corrupt_every: 0,
        }
    }

    /// Sets the payload bytes per block for the data plane.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero.
    #[must_use]
    pub fn with_block_bytes(mut self, block_bytes: usize) -> Self {
        assert!(block_bytes > 0, "blocks must carry at least one byte");
        self.block_bytes = block_bytes;
        self
    }

    /// Corrupts one slab byte before every Nth verified payload read
    /// (0 disables the fault injection).
    #[must_use]
    pub fn with_corrupt_every(mut self, corrupt_every: u64) -> Self {
        self.corrupt_every = corrupt_every;
        self
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-shard admission-queue bound (requests).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[must_use]
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        assert!(bound > 0, "queue bound must admit at least one request");
        self.queue_bound = bound;
        self
    }

    /// Injects a per-request service delay into one shard.
    #[must_use]
    pub fn with_slow_shard(mut self, slow: SlowShard) -> Self {
        self.slow_shard = Some(slow);
        self
    }

    /// The injected delay for shard `id`, if any.
    #[must_use]
    pub fn slow_delay_micros(&self, id: usize) -> u64 {
        match self.slow_shard {
            Some(s) if s.shard == id => s.micros,
            _ => 0,
        }
    }

    /// Replaces the simulator configuration.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the number of event-loop IO threads (0 = auto).
    #[must_use]
    pub fn with_io_threads(mut self, io_threads: usize) -> Self {
        self.io_threads = io_threads;
        self
    }

    /// Selects the legacy thread-per-connection front-end.
    #[must_use]
    pub fn with_legacy_threads(mut self, legacy: bool) -> Self {
        self.legacy_threads = legacy;
        self
    }

    /// Builds one shard's policy instance.
    ///
    /// # Panics
    ///
    /// Panics if the policy is offline (Belady / OPG) — those need the
    /// future trace, which an online server does not have.
    #[must_use]
    pub fn build_policy(&self) -> Box<dyn pc_cache::ReplacementPolicy> {
        assert!(
            !matches!(self.policy, PolicySpec::Belady | PolicySpec::Opg { .. }),
            "offline policies (belady/opg) cannot serve an online cluster"
        );
        let power = self.sim.power_model();
        // Online policies ignore the trace; hand build() an empty one.
        let empty = Trace::new(self.disks);
        self.policy
            .build(&empty, &power, self.sim.dpm, self.sim.cache_blocks)
    }
}

/// One shard: a policy-driven cache over its own virtual disk array,
/// advanced by a monotone virtual clock.
///
/// Arrival times may be handed in out of order (wall-clock timestamps
/// race across connections); the shard clamps its clock forward so the
/// underlying discrete-event timeline only advances.
#[derive(Debug)]
pub struct ShardEngine {
    id: usize,
    disks: u32,
    stepper: OnlineStepper,
    now: SimTime,
    /// The payload slab (protocol v2). Lazy: allocates nothing until a
    /// data request touches it, so metadata-only serving is unchanged.
    store: BlockStore,
}

impl ShardEngine {
    /// Builds shard `id` of a cluster described by `cfg`.
    #[must_use]
    pub fn new(id: usize, cfg: &EngineConfig) -> Self {
        ShardEngine {
            id,
            disks: cfg.disks,
            stepper: OnlineStepper::new(cfg.disks, cfg.build_policy(), &cfg.sim),
            now: SimTime::ZERO,
            store: BlockStore::new(cfg.block_bytes, cfg.corrupt_every),
        }
    }

    /// This shard's index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Processes one request arriving at virtual time `at`. The disk
    /// index is reduced modulo the array size and `blocks` is clamped
    /// to at least 1.
    pub fn ingest(
        &mut self,
        at: SimTime,
        disk: u32,
        block: u64,
        blocks: u64,
        write: bool,
    ) -> StepOutcome {
        self.now = self.now.max(at);
        let mut record = Record::new(
            self.now,
            BlockId::new(DiskId::new(disk % self.disks), BlockNo::new(block)),
            if write { IoOp::Write } else { IoOp::Read },
        );
        record.blocks = blocks.max(1);
        self.stepper.step(&record)
    }

    /// Payload bytes per block this shard's data plane serves.
    #[must_use]
    pub fn block_bytes(&self) -> usize {
        self.store.block_bytes()
    }

    /// CRC verification failures the data plane has detected so far.
    #[must_use]
    pub fn crc_failures(&self) -> u64 {
        self.store.crc_failures()
    }

    /// Stores a `WRITE_DATA` payload after [`ingest`](Self::ingest):
    /// each still-resident block of the request takes its slice of
    /// `bytes` into the slab (checksummed, owner-tagged). Blocks the
    /// policy already evicted — possible when a multi-block request
    /// overflows the cache — went to the virtual disk, which exists
    /// only as the deterministic image, so their payload is dropped.
    ///
    /// Runs strictly after the metadata step and never touches the
    /// stepper: policy decisions and energy books are unaffected.
    pub fn write_payload(&mut self, disk: u32, block: u64, blocks: u64, bytes: &[u8]) {
        let bb = self.store.block_bytes();
        let n = usize::try_from(blocks.max(1)).unwrap_or(usize::MAX);
        for (i, chunk) in bytes.chunks_exact(bb).enumerate().take(n) {
            let b = block.wrapping_add(i as u64);
            if let Some(slot) = self.resident_slot(disk, b) {
                // The owner tag records the *wire* disk index: two wire
                // disks that alias modulo the array share cache slots
                // but never each other's bytes.
                self.store.store(slot, disk, b, chunk);
            }
        }
    }

    /// Serves a `READ_DATA` payload after [`ingest`](Self::ingest),
    /// appending `blocks.max(1) × block_bytes` bytes to `out`: resident
    /// blocks come CRC-verified from the slab (miss-filled from the
    /// disk image on first touch or owner mismatch), evicted blocks are
    /// synthesized straight into the reply. Returns `false` — with
    /// `out` possibly holding a partial payload the caller must
    /// discard — when a slab frame failed its CRC check (counted in
    /// [`crc_failures`](Self::crc_failures), frame refilled).
    pub fn read_payload_into(
        &mut self,
        disk: u32,
        block: u64,
        blocks: u64,
        out: &mut Vec<u8>,
    ) -> bool {
        for i in 0..blocks.max(1) {
            let b = block.wrapping_add(i);
            let slot = self.resident_slot(disk, b);
            if self.store.read_into(slot, disk, b, out) == ReadOutcome::Corrupt {
                return false;
            }
        }
        true
    }

    /// The slab slot a `(wire disk, block)` pair currently occupies,
    /// using the same modulo reduction as [`ingest`](Self::ingest).
    fn resident_slot(&self, disk: u32, block: u64) -> Option<usize> {
        let id = BlockId::new(DiskId::new(disk % self.disks), BlockNo::new(block));
        self.stepper.resident_slot(id).map(pc_cache::Slot::index)
    }

    /// A live snapshot: counters are exact, energy covers each disk up
    /// to its last power event (the disks account lazily).
    #[must_use]
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            shard: self.id,
            requests: self.stepper.requests(),
            cache: self.stepper.cache_stats(),
            energy: self.stepper.live_energy(),
            response_total: self.stepper.response_total(),
            response_hist: self.stepper.response_hist().clone(),
            horizon: self.stepper.horizon(),
            busy_rejects: 0,
            queue_depth: 0,
            queue_high_water: 0,
            crc_failures: self.store.crc_failures(),
            meta: self.stepper.meta_stats(),
        }
    }

    /// Closes the energy books through the horizon and returns the
    /// final snapshot (what the daemon reports after a drain).
    #[must_use]
    pub fn into_snapshot(self) -> ShardSnapshot {
        let id = self.id;
        let crc_failures = self.store.crc_failures();
        // Captured before into_report consumes the stepper (and with it
        // the live policy the gauges read from).
        let meta = self.stepper.meta_stats();
        let report = self.stepper.into_report();
        ShardSnapshot {
            shard: id,
            requests: report.requests,
            cache: report.cache,
            energy: report.total_energy(),
            response_total: report.response_total,
            response_hist: report.response_hist.clone(),
            horizon: report.horizon,
            busy_rejects: 0,
            queue_depth: 0,
            queue_high_water: 0,
            crc_failures,
            meta,
        }
    }
}

/// What happened to one submitted record in the in-process cluster.
#[derive(Debug, Clone, Copy)]
pub enum SubmitOutcome {
    /// The request was admitted and executed.
    Served {
        /// The shard that served it.
        shard: usize,
        /// The simulation outcome.
        outcome: StepOutcome,
    },
    /// The shard's admission queue was full: the request was rejected
    /// and never touched the cache or the energy books.
    Busy {
        /// The shard that rejected it.
        shard: usize,
        /// Queue depth at rejection time.
        depth: usize,
    },
}

impl SubmitOutcome {
    /// The executed outcome, if the request was admitted.
    #[must_use]
    pub fn served(&self) -> Option<StepOutcome> {
        match *self {
            SubmitOutcome::Served { outcome, .. } => Some(outcome),
            SubmitOutcome::Busy { .. } => None,
        }
    }
}

/// A whole cluster in one thread: the deterministic in-process mode.
///
/// Drives the same request → shard → cache → energy path as the TCP
/// server, but arrival times come from the records themselves, so two
/// runs over the same stream produce identical counters — the
/// foundation of the end-to-end determinism tests.
///
/// Backpressure is modelled in *virtual* time so it is deterministic
/// too: each shard serves one request per [`SlowShard`] delay (zero for
/// un-slowed shards), admitted requests occupy a queue slot until their
/// virtual completion time passes, and a submit that finds the queue at
/// its bound is answered [`SubmitOutcome::Busy`] — exactly the protocol
/// the TCP server speaks, minus the sockets.
#[derive(Debug)]
pub struct InProcCluster {
    policy: String,
    write_policy: String,
    queue_bound: usize,
    shards: Vec<ShardEngine>,
    /// Injected per-request service delay per shard.
    delay: Vec<SimDuration>,
    /// Virtual completion times of admitted-but-unfinished requests.
    pending: Vec<VecDeque<SimTime>>,
    busy_rejects: Vec<u64>,
    high_water: Vec<u64>,
}

impl InProcCluster {
    /// Builds all shards of `cfg`.
    #[must_use]
    pub fn new(cfg: &EngineConfig) -> Self {
        InProcCluster {
            policy: cfg.policy.name(),
            write_policy: cfg.sim.write_policy.name().to_owned(),
            queue_bound: cfg.queue_bound,
            shards: (0..cfg.shards).map(|i| ShardEngine::new(i, cfg)).collect(),
            delay: (0..cfg.shards)
                .map(|i| SimDuration::from_micros(cfg.slow_delay_micros(i)))
                .collect(),
            pending: vec![VecDeque::new(); cfg.shards],
            busy_rejects: vec![0; cfg.shards],
            high_water: vec![0; cfg.shards],
        }
    }

    /// Routes one record through admission control and, if admitted,
    /// the cache/energy engine.
    pub fn submit(&mut self, record: &Record) -> SubmitOutcome {
        let s = shard_of(record.block.disk(), record.block.block(), self.shards.len());
        let t = record.time;
        let q = &mut self.pending[s];
        // Requests whose virtual service completed by now have left the
        // queue.
        while q.front().is_some_and(|&done| done <= t) {
            q.pop_front();
        }
        if q.len() >= self.queue_bound {
            self.busy_rejects[s] += 1;
            return SubmitOutcome::Busy {
                shard: s,
                depth: q.len(),
            };
        }
        // Service starts when the previous request finishes (or now).
        let start = q.back().copied().unwrap_or(t).max(t);
        q.push_back(start + self.delay[s]);
        self.high_water[s] = self.high_water[s].max(q.len() as u64);
        let outcome = self.shards[s].ingest(
            t,
            record.block.disk().index(),
            record.block.block().number(),
            record.blocks,
            record.op == IoOp::Write,
        );
        SubmitOutcome::Served { shard: s, outcome }
    }

    /// Per-shard `BUSY` rejections so far.
    #[must_use]
    pub fn busy_rejects(&self) -> &[u64] {
        &self.busy_rejects
    }

    fn decorate(&self, mut snap: ShardSnapshot, live: bool) -> ShardSnapshot {
        let s = snap.shard;
        snap.busy_rejects = self.busy_rejects[s];
        snap.queue_depth = if live {
            self.pending[s].len() as u64
        } else {
            0
        };
        snap.queue_high_water = self.high_water[s];
        snap
    }

    /// A live cluster snapshot.
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot::new(
            self.policy.clone(),
            self.write_policy.clone(),
            self.shards
                .iter()
                .map(|e| self.decorate(e.snapshot(), true))
                .collect(),
        )
    }

    /// Closes every shard's books and returns the final snapshot (the
    /// modelled queues are drained: depth gauges read zero, the
    /// high-water marks and reject counters survive).
    #[must_use]
    pub fn into_snapshot(self) -> ClusterSnapshot {
        let (busy, hw) = (self.busy_rejects, self.high_water);
        let snaps = self
            .shards
            .into_iter()
            .map(ShardEngine::into_snapshot)
            .map(|mut snap| {
                snap.busy_rejects = busy[snap.shard];
                snap.queue_high_water = hw[snap.shard];
                snap
            })
            .collect();
        ClusterSnapshot::new(self.policy, self.write_policy, snaps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_trace::Workload;
    use pc_units::Joules;

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        let mut seen = [false; 8];
        for d in 0..4u32 {
            for b in 0..1_000u64 {
                let s = shard_of(DiskId::new(d), BlockNo::new(b), 8);
                assert_eq!(s, shard_of(DiskId::new(d), BlockNo::new(b), 8));
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "4k blocks must touch all 8 shards");
    }

    #[test]
    fn every_online_policy_builds_a_shard() {
        for name in ONLINE_POLICIES {
            let spec = online_policy(name).unwrap();
            let cfg = EngineConfig::new(2, 4).with_policy(spec);
            let mut shard = ShardEngine::new(0, &cfg);
            let out = shard.ingest(SimTime::from_millis(1), 0, 7, 1, false);
            assert!(!out.hit, "{name}: first access must miss");
        }
        assert_eq!(ONLINE_POLICIES.len(), 11);
        assert!(online_policy("belady").is_none());
    }

    #[test]
    fn meta_policy_builds_a_shard_and_reports_gauges() {
        let spec = online_policy("meta").unwrap();
        assert_eq!(spec.name(), "meta");
        assert!(
            !ONLINE_POLICIES.contains(&"meta"),
            "fixed-policy sweeps must not recurse into the meta-policy"
        );
        let cfg = EngineConfig::new(2, 4).with_policy(spec);
        let mut shard = ShardEngine::new(0, &cfg);
        let out = shard.ingest(SimTime::from_millis(1), 0, 7, 1, false);
        assert!(!out.hit, "meta: first access must miss");
        let meta = shard.snapshot().meta.expect("meta shard carries gauges");
        assert_eq!(meta.active, "lru", "meta starts on its first candidate");
        assert_eq!(meta.switches, 0);
        // A fixed-policy shard must not grow the gauges.
        let fixed = ShardEngine::new(0, &EngineConfig::new(2, 4));
        assert!(fixed.snapshot().meta.is_none());
        // into_snapshot keeps the gauges across the book-closing move.
        assert!(shard.into_snapshot().meta.is_some());
    }

    #[test]
    #[should_panic(expected = "offline")]
    fn offline_policies_are_rejected() {
        let cfg = EngineConfig::new(1, 1).with_policy(PolicySpec::Belady);
        let _ = ShardEngine::new(0, &cfg);
    }

    #[test]
    fn clock_is_monotone_under_reordered_arrivals() {
        let cfg = EngineConfig::new(1, 2);
        let mut shard = ShardEngine::new(0, &cfg);
        shard.ingest(SimTime::from_millis(10), 0, 1, 1, false);
        // An earlier wall timestamp must not rewind the timeline.
        let out = shard.ingest(SimTime::from_millis(5), 0, 1, 1, false);
        assert!(out.hit);
        assert_eq!(shard.snapshot().horizon, SimTime::from_millis(10));
    }

    #[test]
    fn disk_indices_reduce_modulo_the_array() {
        let cfg = EngineConfig::new(1, 3);
        let mut shard = ShardEngine::new(0, &cfg);
        // disk 7 % 3 == 1: must not panic, and hits the same line as disk 1.
        shard.ingest(SimTime::from_millis(1), 7, 42, 1, false);
        let out = shard.ingest(SimTime::from_millis(2), 1, 42, 1, false);
        assert!(out.hit);
    }

    #[test]
    fn in_process_cluster_is_deterministic() {
        let w = Workload::parse("synthetic").unwrap().with_requests(5_000);
        let run = |seed: u64| {
            let mut cluster = InProcCluster::new(&EngineConfig::new(4, 4));
            for r in w.stream(seed) {
                cluster.submit(&r);
            }
            cluster.into_snapshot()
        };
        let (a, b) = (run(42), run(42));
        assert_eq!(a.total_requests(), 5_000);
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            assert_eq!(sa.cache, sb.cache, "shard {} counters diverged", sa.shard);
            assert_eq!(sa.energy, sb.energy, "shard {} energy diverged", sa.shard);
            assert!(sa.requests > 0, "shard {} starved", sa.shard);
            assert!(sa.energy > Joules::ZERO, "shard {} has no energy", sa.shard);
        }
        assert_eq!(a.to_json(), b.to_json());
        // A different seed gives a different stream.
        assert_ne!(run(43).to_json(), a.to_json());
    }

    #[test]
    fn slow_shard_flag_parses() {
        assert_eq!(
            parse_slow_shard("0:500"),
            Some(SlowShard {
                shard: 0,
                micros: 500
            })
        );
        assert_eq!(
            parse_slow_shard("3:1000000"),
            Some(SlowShard {
                shard: 3,
                micros: 1_000_000
            })
        );
        assert_eq!(parse_slow_shard("3"), None);
        assert_eq!(parse_slow_shard("x:5"), None);
        assert_eq!(parse_slow_shard("1:"), None);
    }

    #[test]
    fn tiny_queue_plus_slow_shard_rejects_deterministically() {
        let w = Workload::parse("synthetic").unwrap().with_requests(20_000);
        // The synthetic stream's virtual inter-arrival mean is 250 ms,
        // so the injected service delay must dwarf it for the 8-slot
        // queue to back up (this is virtual time: the test stays fast).
        let cfg = EngineConfig::new(4, 4)
            .with_queue_bound(8)
            .with_slow_shard(SlowShard {
                shard: 0,
                micros: 10_000_000,
            });
        let run = || {
            let mut cluster = InProcCluster::new(&cfg);
            let mut served = 0u64;
            let mut busy = 0u64;
            for r in w.stream(42) {
                match cluster.submit(&r) {
                    SubmitOutcome::Served { .. } => served += 1,
                    SubmitOutcome::Busy { shard, depth } => {
                        assert_eq!(shard, 0, "only the slow shard may reject");
                        assert!(depth >= 8, "rejection implies a full queue");
                        busy += 1;
                    }
                }
            }
            (served, busy, cluster.into_snapshot())
        };
        let (served, busy, snap) = run();
        assert!(busy > 0, "the slow shard must overflow its 8-slot queue");
        assert_eq!(served + busy, 20_000, "every request answered exactly once");
        assert_eq!(
            snap.total_requests(),
            served,
            "rejected requests must not reach the engine"
        );
        assert_eq!(snap.total_busy_rejects(), busy);
        assert_eq!(snap.shards[0].queue_high_water, 8);
        assert!(
            snap.shards[1..].iter().all(|s| s.busy_rejects == 0),
            "fast shards never reject"
        );

        // Byte-identical accounting across runs, including under overload.
        let (served2, busy2, snap2) = run();
        assert_eq!((served, busy), (served2, busy2));
        assert_eq!(snap.to_json(), snap2.to_json());
    }

    #[test]
    fn unslowed_cluster_never_rejects() {
        let w = Workload::parse("synthetic").unwrap().with_requests(5_000);
        let mut cluster = InProcCluster::new(&EngineConfig::new(2, 4).with_queue_bound(1));
        for r in w.stream(9) {
            assert!(
                cluster.submit(&r).served().is_some(),
                "zero-delay shards drain instantly and never reject"
            );
        }
        let snap = cluster.into_snapshot();
        assert_eq!(snap.total_busy_rejects(), 0);
    }

    #[test]
    fn final_snapshot_closes_the_energy_books() {
        let w = Workload::parse("synthetic").unwrap().with_requests(2_000);
        let mut cluster = InProcCluster::new(&EngineConfig::new(2, 4));
        for r in w.stream(1) {
            cluster.submit(&r);
        }
        let live = cluster.snapshot().total_energy();
        let fin = cluster.into_snapshot().total_energy();
        // Closing the books accounts the tail the lazy disks had not
        // charged yet.
        assert!(fin >= live, "final {fin} < live {live}");
        assert!(fin > Joules::ZERO);
    }
}
