//! Reader compatibility pin: the committed golden fixture
//! (`tests/data/golden.pct` at the repo root, 200 synthetic records,
//! seed 42) must keep decoding to exactly the same bytes forever. Any
//! change to the on-disk layout shows up here first — if this test
//! breaks, you changed the format, and that requires a version bump
//! plus a new reader arm, not a fixture regeneration.

use pc_crc::crc32c;
use pc_tracefile::{encode_record, open, read_trace};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/golden.pct")
}

#[test]
fn golden_fixture_still_decodes_identically() {
    let path = golden_path();
    let reader = open(&path).unwrap();
    let header = *reader.header();
    assert_eq!(header.version, 1);
    assert_eq!(header.disk_count, 20);
    assert_eq!(header.record_count, Some(200));
    assert_eq!(header.chunk_records, 4096);

    let trace = read_trace(&path).unwrap();
    assert_eq!(trace.len(), 200);

    // Content digest over the canonical re-encoding of every decoded
    // record, in time order — pins the decoded values, not just counts.
    let mut bytes = Vec::new();
    for r in trace.records() {
        bytes.extend_from_slice(&encode_record(r));
    }
    assert_eq!(
        crc32c(&bytes),
        2_326_633_462,
        "decoded records differ from the pinned golden content"
    );

    // The file on disk is also byte-stable: nothing regenerates it.
    let raw = std::fs::read(&path).unwrap();
    assert_eq!(raw.len(), 6464);
    assert_eq!(
        crc32c(&raw),
        3_419_270_115,
        "the committed fixture bytes changed"
    );
}
