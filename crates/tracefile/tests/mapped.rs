//! Integration tests for the mmap-backed reader: `MappedTrace` must
//! decode exactly what `TraceReader` decodes, verify chunks lazily
//! (first touch only, never twice), and turn every possible single-bit
//! flip into a clean `io::Error` — never a panic, never silently
//! different records.

use std::io::Write;

use pc_trace::{Record, Workload};
use pc_tracefile::{MappedTrace, TraceReader, TraceWriter};

/// Serializes `records` into an in-memory `.pct` image.
fn image(disk_count: u32, records: &[Record], chunk_records: u32) -> Vec<u8> {
    let mut writer =
        TraceWriter::with_chunk_records(Vec::new(), disk_count, chunk_records).unwrap();
    for r in records {
        writer.push(*r).unwrap();
    }
    writer.finish().unwrap().0
}

fn family(name: &str, requests: usize, seed: u64) -> (u32, Vec<Record>) {
    let workload = Workload::parse(name).unwrap().with_requests(requests);
    let records = workload.clone().stream(seed).collect();
    (workload.disk_count(), records)
}

/// A scratch file under the system temp dir, unique per test.
fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pc-mapped-{tag}-{}.pct", std::process::id()))
}

#[test]
fn mapped_and_reader_decode_identical_records() {
    for requests in [1usize, 63, 64, 65, 1_000] {
        for name in ["synthetic", "oltp", "cello96"] {
            let (disks, records) = family(name, requests, 7);
            let bytes = image(disks, &records, 64);
            let via_reader: Vec<Record> = TraceReader::new(bytes.as_slice())
                .unwrap()
                .collect::<std::io::Result<_>>()
                .unwrap();
            let map = MappedTrace::from_bytes(bytes).unwrap();
            assert_eq!(map.len(), records.len() as u64);
            assert_eq!(map.disk_count(), disks);
            assert!(map.is_time_sorted(), "generators emit time-ordered records");
            let via_map: Vec<Record> = map.records().collect::<std::io::Result<_>>().unwrap();
            assert_eq!(via_map, via_reader, "{name} x{requests}");
            assert_eq!(via_map, records, "{name} x{requests}");
        }
    }
}

#[test]
fn mapped_open_reads_a_real_file_and_random_access_matches() {
    let (disks, records) = family("oltp", 200, 9);
    let bytes = image(disks, &records, 32);
    let path = temp_path("open");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(&bytes))
        .unwrap();
    let map = MappedTrace::open(&path).unwrap();
    for (i, expected) in records.iter().enumerate() {
        assert_eq!(&map.get(i as u64).unwrap(), expected, "record {i}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn verification_is_lazy_and_happens_once() {
    // 256 records in chunks of 32 → 8 data chunks.
    let (disks, records) = family("synthetic", 256, 3);
    let map = MappedTrace::from_bytes(image(disks, &records, 32)).unwrap();
    assert_eq!(
        map.verified_chunks(),
        0,
        "construction must not touch data CRCs"
    );
    assert_eq!(map.crc_computations(), 0);

    // Touching one record verifies exactly its chunk.
    map.get(40).unwrap();
    assert_eq!(map.verified_chunks(), 1);
    assert_eq!(map.crc_computations(), 1);

    // Re-touching the same chunk recomputes nothing.
    map.get(41).unwrap();
    assert_eq!(map.crc_computations(), 1);

    // A full pass verifies the rest; a second full pass recomputes nothing.
    assert_eq!(map.records().count(), 256);
    assert_eq!(map.verified_chunks(), 8);
    assert_eq!(map.crc_computations(), 8);
    assert_eq!(map.records().count(), 256);
    assert_eq!(map.crc_computations(), 8);
}

#[test]
fn unsorted_files_are_flagged() {
    let (disks, mut records) = family("synthetic", 100, 5);
    records.swap(10, 90);
    let map = MappedTrace::from_bytes(image(disks, &records, 32)).unwrap();
    assert!(!map.is_time_sorted());
}

#[test]
fn every_single_bit_flip_fails_cleanly_or_decodes_identically() {
    // Small on purpose: 10 records in chunks of 4 is still a multi-chunk
    // file (3 data chunks, the last partial) but keeps the sweep at
    // ~2,600 images. Every flip must surface as a clean error — at
    // construction or at lazy-verify time — or decode to exactly the
    // original records (a flip that widens a header geometry field can
    // pass validation without changing data).
    let (disks, records) = family("oltp", 10, 1);
    let bytes = image(disks, &records, 4);
    for pos in 0..bytes.len() * 8 {
        let mut damaged = bytes.clone();
        damaged[pos / 8] ^= 1 << (pos % 8);
        let outcome = MappedTrace::from_bytes(damaged)
            .and_then(|map| map.records().collect::<std::io::Result<Vec<Record>>>());
        match outcome {
            Ok(back) => assert_eq!(back, records, "bit {pos} flip decoded to different records"),
            Err(e) => assert!(!e.to_string().is_empty(), "bit {pos}"),
        }
    }
}

#[test]
fn verify_all_rejects_a_payload_flip_before_replay() {
    // The loadgen path calls verify_all() up front; a flipped record
    // byte must be caught there, not at serve time.
    let (disks, records) = family("synthetic", 64, 2);
    let mut bytes = image(disks, &records, 16);
    // Byte 8 past the first chunk head lands inside record payload.
    let off = pc_tracefile::HEADER_BYTES + 8 + 8;
    bytes[off] ^= 0x10;
    let map = MappedTrace::from_bytes(bytes).unwrap();
    let err = map.verify_all().unwrap_err();
    assert!(err.to_string().contains("CRC"), "got: {err}");
}
