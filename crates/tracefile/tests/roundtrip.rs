//! Property tests for the `.pct` format against the real workload
//! generators: every family round-trips bit-exactly through the
//! writer/reader pair at awkward lengths, and no single-bit corruption
//! or truncation can crash the reader — damage must surface as a clean
//! `io::Error` or leave the records untouched, never a panic and never
//! silently different data.

use pc_trace::{Record, Workload};
use pc_tracefile::{TraceReader, TraceWriter, RECORD_BYTES};

/// Serializes `records` into an in-memory `.pct` image with the given
/// chunk size.
fn image(disk_count: u32, records: &[Record], chunk_records: u32) -> Vec<u8> {
    let mut writer =
        TraceWriter::with_chunk_records(Vec::new(), disk_count, chunk_records).unwrap();
    for r in records {
        writer.push(*r).unwrap();
    }
    writer.finish().unwrap().0
}

/// Reads every record back out of a `.pct` image.
fn decode(bytes: &[u8]) -> std::io::Result<Vec<Record>> {
    TraceReader::new(bytes)?.collect()
}

#[test]
fn every_family_round_trips_at_awkward_lengths() {
    // Lengths straddling the chunk boundary: one, one less than a
    // chunk, exactly one chunk, one more, and several chunks plus a
    // remainder.
    for requests in [1usize, 63, 64, 65, 1_000] {
        for name in ["synthetic", "oltp", "cello96"] {
            let workload = Workload::parse(name).unwrap().with_requests(requests);
            let records: Vec<Record> = workload.stream(7).collect();
            let bytes = image(workload.disk_count(), &records, 64);
            let back = decode(&bytes).unwrap();
            assert_eq!(records, back, "{name} x{requests} must round-trip");
        }
    }
}

#[test]
fn an_empty_trace_round_trips() {
    let bytes = image(4, &[], 64);
    assert_eq!(decode(&bytes).unwrap(), Vec::new());
}

#[test]
fn truncation_at_every_byte_fails_cleanly() {
    let workload = Workload::parse("synthetic").unwrap().with_requests(130);
    let records: Vec<Record> = workload.stream(3).collect();
    let bytes = image(workload.disk_count(), &records, 64);
    // Every proper prefix must produce an error — a truncated file can
    // never masquerade as a complete one, because the end marker (or
    // the bytes before it) is missing.
    for cut in 0..bytes.len() {
        assert!(
            decode(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes must be rejected",
            bytes.len()
        );
    }
}

#[test]
fn single_bit_flips_never_panic_and_never_corrupt_records() {
    let workload = Workload::parse("oltp").unwrap().with_requests(40);
    let records: Vec<Record> = workload.stream(5).collect();
    let bytes = image(workload.disk_count(), &records, 16);
    // A deterministic sweep: flip every single bit of the image, one at
    // a time. Each damaged image must either fail cleanly or decode to
    // exactly the original records — flips in record payloads are
    // caught by the chunk CRC, flips in structure by format validation;
    // a flip that widens a header geometry field (more disks, larger
    // chunk cap) may pass, but it cannot change the data.
    for pos in 0..bytes.len() * 8 {
        let mut damaged = bytes.clone();
        damaged[pos / 8] ^= 1 << (pos % 8);
        match decode(&damaged) {
            Ok(back) => assert_eq!(back, records, "bit {pos} flip decoded to different records"),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
}

#[test]
fn record_size_is_pinned() {
    // The on-disk record is part of the compatibility contract; growing
    // it requires a format version bump, not a silent relayout.
    assert_eq!(RECORD_BYTES, 32);
}
