//! Proves the zero-copy replay contract: once a `MappedTrace` is open,
//! streaming its records — sequentially or through the strided
//! round-robin access pattern `pc-loadgen` uses — performs no heap
//! allocation at all. A counting global allocator wraps the system one;
//! the hot loops must leave the counter untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pc_trace::Workload;
use pc_tracefile::{MappedTrace, TraceWriter};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a
// side effect with no bearing on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn replay_loops_do_not_allocate_per_record() {
    // Setup allocates freely: generate, serialize, open the map.
    let workload = Workload::parse("oltp").unwrap().with_requests(2_000);
    let mut writer =
        TraceWriter::with_chunk_records(Vec::new(), workload.disk_count(), 64).unwrap();
    for r in workload.stream(13) {
        writer.push(r).unwrap();
    }
    let (bytes, _) = writer.finish().unwrap();
    let map = MappedTrace::from_bytes(bytes).unwrap();

    // Sequential stream — the simulator's ingest path. The first pass
    // verifies every chunk CRC on the way through; even that must not
    // allocate.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut blocks = 0u64;
    for record in map.records() {
        blocks += record.unwrap().blocks;
    }
    assert!(blocks > 0);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "sequential replay must not allocate per record"
    );

    // Strided access — pc-loadgen's round-robin deal: connection c
    // reads records c, c+conns, c+2·conns, … straight off the map.
    let conns = 7u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut sum = 0u64;
    for conn in 0..conns {
        let mut next = conn;
        while next < map.len() {
            sum += map.get(next).unwrap().block.block().number();
            next += conns;
        }
    }
    assert!(sum > 0);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "strided replay must not allocate per record"
    );
}
