//! On-disk layout of `.pct` trace files: header and record codecs.
//!
//! Everything is fixed-width little-endian. The file opens with a 32-byte
//! header, followed by a sequence of chunks, each a run of 32-byte records
//! bracketed by an 8-byte chunk head (record count) and an 8-byte footer
//! carrying the CRC32C of the chunk's record bytes. A chunk head with a
//! record count of zero is the end-of-stream marker. See `DESIGN.md` for
//! the full byte-layout table.

use std::io;

use pc_trace::{IoOp, Record};
use pc_units::{BlockId, BlockNo, DiskId, SimTime};

/// File magic: the first eight bytes of every `.pct` file.
pub const MAGIC: [u8; 8] = *b"PCTRACE\0";

/// Current format version, written into and required from the header.
pub const FORMAT_VERSION: u16 = 1;

/// Size of the file header, in bytes.
pub const HEADER_BYTES: usize = 32;

/// Size of one encoded record, in bytes.
pub const RECORD_BYTES: usize = 32;

/// Size of a chunk head (record count + reserved word), in bytes.
pub const CHUNK_HEAD_BYTES: usize = 8;

/// Size of a chunk footer (CRC32C + reserved word), in bytes.
pub const CHUNK_FOOT_BYTES: usize = 8;

/// Default number of records per full chunk.
pub const DEFAULT_CHUNK_RECORDS: u32 = 4_096;

/// Header sentinel meaning "record count unknown" (streamed capture that
/// could not be finalized in place).
pub const RECORD_COUNT_UNKNOWN: u64 = u64::MAX;

/// Builds an [`io::Error`] of kind `InvalidData` — the uniform failure
/// mode for malformed trace files.
pub(crate) fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The decoded file header: format identity plus disk geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version (currently always [`FORMAT_VERSION`]).
    pub version: u16,
    /// Number of disks in the array the trace addresses; every record's
    /// disk index must be below this.
    pub disk_count: u32,
    /// Total record count, or `None` when the writer could not seek back
    /// to finalize the header (pure streaming).
    pub record_count: Option<u64>,
    /// Capacity of a full chunk, in records. Every chunk except the last
    /// data chunk holds exactly this many records.
    pub chunk_records: u32,
}

impl Header {
    /// Creates a header for a new file.
    #[must_use]
    pub fn new(disk_count: u32, chunk_records: u32) -> Header {
        Header {
            version: FORMAT_VERSION,
            disk_count,
            record_count: None,
            chunk_records,
        }
    }

    /// Encodes the header into its 32-byte on-disk form.
    #[must_use]
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..10].copy_from_slice(&self.version.to_le_bytes());
        // Bytes 10..12 are flags, reserved (zero) in v1.
        out[12..16].copy_from_slice(&self.disk_count.to_le_bytes());
        let count = self.record_count.unwrap_or(RECORD_COUNT_UNKNOWN);
        out[16..24].copy_from_slice(&count.to_le_bytes());
        out[24..28].copy_from_slice(&self.chunk_records.to_le_bytes());
        // Bytes 28..32 reserved (zero).
        out
    }

    /// Decodes and validates a 32-byte header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic, an unsupported version,
    /// non-zero reserved fields, or degenerate geometry.
    pub fn decode(bytes: &[u8; HEADER_BYTES]) -> io::Result<Header> {
        if bytes[0..8] != MAGIC {
            return Err(bad("not a .pct trace file (bad magic)".into()));
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported trace format version {version} (this reader handles {FORMAT_VERSION})"
            )));
        }
        let flags = u16::from_le_bytes([bytes[10], bytes[11]]);
        if flags != 0 {
            return Err(bad(format!("unknown header flags {flags:#06x}")));
        }
        let disk_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if disk_count == 0 {
            return Err(bad("trace header declares zero disks".into()));
        }
        let raw_count = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let record_count = (raw_count != RECORD_COUNT_UNKNOWN).then_some(raw_count);
        let chunk_records = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        if chunk_records == 0 {
            return Err(bad("trace header declares zero-record chunks".into()));
        }
        if bytes[28..32] != [0u8; 4] {
            return Err(bad("non-zero reserved header bytes".into()));
        }
        Ok(Header {
            version,
            disk_count,
            record_count,
            chunk_records,
        })
    }
}

/// Encodes one record into its 32-byte on-disk form.
#[must_use]
pub fn encode_record(r: &Record) -> [u8; RECORD_BYTES] {
    let mut out = [0u8; RECORD_BYTES];
    out[0..8].copy_from_slice(&r.time.as_micros().to_le_bytes());
    out[8..16].copy_from_slice(&r.block.block().number().to_le_bytes());
    out[16..24].copy_from_slice(&r.blocks.to_le_bytes());
    out[24..28].copy_from_slice(&r.block.disk().index().to_le_bytes());
    out[28] = u8::from(r.op.is_write());
    // Bytes 29..32 are padding, always zero.
    out
}

/// Decodes and validates one 32-byte record against `disk_count`.
///
/// # Errors
///
/// Returns `InvalidData` if the op byte or padding is malformed, the
/// transfer length is zero, or the disk index is out of range.
pub fn decode_record(bytes: &[u8; RECORD_BYTES], disk_count: u32) -> io::Result<Record> {
    let time = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let block = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let blocks = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let disk = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    let op = match bytes[28] {
        0 => IoOp::Read,
        1 => IoOp::Write,
        other => return Err(bad(format!("bad op byte {other:#04x}"))),
    };
    if bytes[29..32] != [0u8; 3] {
        return Err(bad("non-zero record padding".into()));
    }
    if blocks == 0 {
        return Err(bad("record transfers zero blocks".into()));
    }
    if disk >= disk_count {
        return Err(bad(format!(
            "record addresses disk {disk} but the trace has {disk_count} disks"
        )));
    }
    Ok(Record {
        time: SimTime::from_micros(time),
        block: BlockId::new(DiskId::new(disk), BlockNo::new(block)),
        blocks,
        op,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let mut h = Header::new(21, 512);
        h.record_count = Some(1_000);
        assert_eq!(Header::decode(&h.encode()).unwrap(), h);
        h.record_count = None;
        assert_eq!(Header::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn header_rejects_malformations() {
        let good = Header::new(4, 16).encode();
        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert!(Header::decode(&bad_magic).is_err());
        let mut bad_version = good;
        bad_version[8] = 99;
        assert!(Header::decode(&bad_version).is_err());
        let mut bad_flags = good;
        bad_flags[10] = 1;
        assert!(Header::decode(&bad_flags).is_err());
        let mut zero_disks = good;
        zero_disks[12..16].copy_from_slice(&0u32.to_le_bytes());
        assert!(Header::decode(&zero_disks).is_err());
        let mut zero_chunk = good;
        zero_chunk[24..28].copy_from_slice(&0u32.to_le_bytes());
        assert!(Header::decode(&zero_chunk).is_err());
        let mut dirty_reserved = good;
        dirty_reserved[30] = 7;
        assert!(Header::decode(&dirty_reserved).is_err());
    }

    #[test]
    fn record_round_trips() {
        let r = Record {
            time: SimTime::from_micros(123_456_789),
            block: BlockId::new(DiskId::new(3), BlockNo::new(987_654_321)),
            blocks: 64,
            op: IoOp::Write,
        };
        assert_eq!(decode_record(&encode_record(&r), 4).unwrap(), r);
    }

    #[test]
    fn record_rejects_malformations() {
        let r = Record::new(
            SimTime::from_micros(1),
            BlockId::new(DiskId::new(0), BlockNo::new(9)),
            IoOp::Read,
        );
        let good = encode_record(&r);
        let mut bad_op = good;
        bad_op[28] = 2;
        assert!(decode_record(&bad_op, 1).is_err());
        let mut bad_pad = good;
        bad_pad[31] = 1;
        assert!(decode_record(&bad_pad, 1).is_err());
        let mut zero_len = good;
        zero_len[16..24].copy_from_slice(&0u64.to_le_bytes());
        assert!(decode_record(&zero_len, 1).is_err());
        // Disk out of range for a 1-disk header.
        let far = Record::new(
            SimTime::from_micros(1),
            BlockId::new(DiskId::new(5), BlockNo::new(9)),
            IoOp::Read,
        );
        assert!(decode_record(&encode_record(&far), 1).is_err());
    }
}
