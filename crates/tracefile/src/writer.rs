//! Streaming `.pct` writers.

use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use pc_crc::crc32c;
use pc_trace::{Record, Trace};

use crate::format::{bad, Header, DEFAULT_CHUNK_RECORDS};
use crate::{encode_record, RECORD_COUNT_UNKNOWN};

/// Streams records into any [`Write`] sink in `.pct` format.
///
/// Records are buffered into fixed-capacity chunks; each full chunk is
/// flushed with a CRC32C footer. [`TraceWriter::finish`] flushes the final
/// partial chunk and the end-of-stream marker. Because a plain `Write`
/// sink cannot seek, the header's record count is left as "unknown" —
/// use [`TraceFileWriter`] (or [`write_records`]) for seekable files,
/// which patch the true count into the header on finish.
///
/// # Examples
///
/// ```
/// use pc_tracefile::{TraceReader, TraceWriter};
/// use pc_trace::{IoOp, Record};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let rec = Record::new(
///     SimTime::from_millis(5),
///     BlockId::new(DiskId::new(1), BlockNo::new(42)),
///     IoOp::Write,
/// );
/// let mut w = TraceWriter::new(Vec::new(), 2).unwrap();
/// w.push(rec).unwrap();
/// let (bytes, count) = w.finish().unwrap();
/// assert_eq!(count, 1);
/// let back: Vec<Record> = TraceReader::new(bytes.as_slice())
///     .unwrap()
///     .collect::<std::io::Result<_>>()
///     .unwrap();
/// assert_eq!(back, vec![rec]);
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    disk_count: u32,
    chunk_records: u32,
    /// Encoded records of the chunk being built.
    chunk: Vec<u8>,
    in_chunk: u32,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a new trace over `disk_count` disks, writing the header
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for a zero disk count, or any sink error.
    pub fn new(sink: W, disk_count: u32) -> io::Result<TraceWriter<W>> {
        TraceWriter::with_chunk_records(sink, disk_count, DEFAULT_CHUNK_RECORDS)
    }

    /// Like [`TraceWriter::new`] with an explicit chunk capacity (mostly
    /// for tests exercising chunk boundaries).
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for zero geometry, or any sink error.
    pub fn with_chunk_records(
        mut sink: W,
        disk_count: u32,
        chunk_records: u32,
    ) -> io::Result<TraceWriter<W>> {
        if disk_count == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "trace must span at least one disk",
            ));
        }
        if chunk_records == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "chunks must hold at least one record",
            ));
        }
        sink.write_all(&Header::new(disk_count, chunk_records).encode())?;
        Ok(TraceWriter {
            sink,
            disk_count,
            chunk_records,
            chunk: Vec::with_capacity(chunk_records as usize * crate::RECORD_BYTES),
            in_chunk: 0,
            written: 0,
        })
    }

    /// Number of records pushed so far.
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Appends one record.
    ///
    /// Records may arrive in any time order (live capture interleaves
    /// connections); readers that need a sorted [`Trace`] re-sort stably.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if the record addresses a disk outside the
    /// header's geometry or transfers zero blocks, or any sink error.
    pub fn push(&mut self, record: Record) -> io::Result<()> {
        if record.block.disk().index() >= self.disk_count {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record addresses {} but the trace has {} disks",
                    record.block.disk(),
                    self.disk_count
                ),
            ));
        }
        if record.blocks == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record transfers zero blocks",
            ));
        }
        self.chunk.extend_from_slice(&encode_record(&record));
        self.in_chunk += 1;
        self.written += 1;
        if self.in_chunk == self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Writes the buffered chunk (head, records, CRC footer) to the sink.
    fn flush_chunk(&mut self) -> io::Result<()> {
        let mut head = [0u8; crate::CHUNK_HEAD_BYTES];
        head[0..4].copy_from_slice(&self.in_chunk.to_le_bytes());
        self.sink.write_all(&head)?;
        self.sink.write_all(&self.chunk)?;
        let mut foot = [0u8; crate::CHUNK_FOOT_BYTES];
        foot[0..4].copy_from_slice(&crc32c(&self.chunk).to_le_bytes());
        self.sink.write_all(&foot)?;
        self.chunk.clear();
        self.in_chunk = 0;
        Ok(())
    }

    /// Flushes the final partial chunk and the end-of-stream marker,
    /// returning the sink and the total record count.
    ///
    /// # Errors
    ///
    /// Returns any sink error.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        if self.in_chunk > 0 {
            self.flush_chunk()?;
        }
        // End marker: an empty chunk (count 0, CRC of zero bytes).
        self.flush_chunk()?;
        self.sink.flush()?;
        Ok((self.sink, self.written))
    }
}

/// A [`TraceWriter`] over a buffered file that patches the true record
/// count into the header when finished, so readers and the zero-parse
/// slice view know the total up front.
#[derive(Debug)]
pub struct TraceFileWriter {
    inner: TraceWriter<BufWriter<File>>,
}

impl TraceFileWriter {
    /// Creates (truncating) `path` and writes the header.
    ///
    /// # Errors
    ///
    /// Returns any file-system error, or `InvalidInput` for zero geometry.
    pub fn create<P: AsRef<Path>>(path: P, disk_count: u32) -> io::Result<TraceFileWriter> {
        Self::with_chunk_records(path, disk_count, DEFAULT_CHUNK_RECORDS)
    }

    /// Like [`TraceFileWriter::create`] with an explicit chunk capacity.
    ///
    /// # Errors
    ///
    /// Returns any file-system error, or `InvalidInput` for zero geometry.
    pub fn with_chunk_records<P: AsRef<Path>>(
        path: P,
        disk_count: u32,
        chunk_records: u32,
    ) -> io::Result<TraceFileWriter> {
        let file = File::create(path)?;
        Ok(TraceFileWriter {
            inner: TraceWriter::with_chunk_records(
                BufWriter::new(file),
                disk_count,
                chunk_records,
            )?,
        })
    }

    /// Number of records pushed so far.
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.inner.records_written()
    }

    /// Appends one record — see [`TraceWriter::push`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for out-of-geometry records, or any I/O
    /// error.
    pub fn push(&mut self, record: Record) -> io::Result<()> {
        self.inner.push(record)
    }

    /// Finishes the stream and patches the record count into the header,
    /// returning the total count.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn finish(self) -> io::Result<u64> {
        let (buf, count) = self.inner.finish()?;
        let mut file = buf
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        if count == RECORD_COUNT_UNKNOWN {
            return Err(bad("record count overflow".into()));
        }
        // The count occupies header bytes 16..24.
        file.seek(SeekFrom::Start(16))?;
        file.write_all(&count.to_le_bytes())?;
        file.sync_data()?;
        Ok(count)
    }
}

/// Writes an iterator of records to `path`, returning the record count.
///
/// # Errors
///
/// Returns any I/O error, or `InvalidInput` for out-of-geometry records.
pub fn write_records<P, I>(path: P, disk_count: u32, records: I) -> io::Result<u64>
where
    P: AsRef<Path>,
    I: IntoIterator<Item = Record>,
{
    let mut w = TraceFileWriter::create(path, disk_count)?;
    for r in records {
        w.push(r)?;
    }
    w.finish()
}

/// Writes a whole [`Trace`] to `path`, returning the record count.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_trace<P: AsRef<Path>>(path: P, trace: &Trace) -> io::Result<u64> {
    write_records(path, trace.disk_count(), trace.iter().copied())
}
