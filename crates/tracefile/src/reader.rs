//! Streaming `.pct` readers.

use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

use pc_crc::crc32c;
use pc_trace::{Record, Trace};

use crate::format::{bad, decode_record, Header, HEADER_BYTES, RECORD_BYTES};
use crate::{CHUNK_FOOT_BYTES, CHUNK_HEAD_BYTES};

/// Streams records out of any [`Read`] source in `.pct` format.
///
/// The reader yields records in file order (a live capture may be
/// time-unsorted across connections — use [`read_trace`] to get a sorted
/// [`Trace`]). Each chunk's CRC32C footer is verified before any of its
/// records are yielded, so a bit flip anywhere in a chunk surfaces as a
/// clean `InvalidData` error, and truncation as `UnexpectedEof` — never a
/// panic.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    header: Header,
    /// Verified record bytes of the current chunk.
    chunk: Vec<u8>,
    /// Byte offset of the next record within `chunk`.
    next: usize,
    yielded: u64,
    /// Set once the end marker has been consumed or an error was yielded.
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the file header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a malformed header or any source error.
    pub fn new(mut source: R) -> io::Result<TraceReader<R>> {
        let mut head = [0u8; HEADER_BYTES];
        source.read_exact(&mut head).map_err(short_header)?;
        let header = Header::decode(&head)?;
        Ok(TraceReader {
            source,
            header,
            chunk: Vec::new(),
            next: 0,
            yielded: 0,
            done: false,
        })
    }

    /// The decoded file header.
    #[must_use]
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Number of disks the trace addresses.
    #[must_use]
    pub fn disk_count(&self) -> u32 {
        self.header.disk_count
    }

    /// Total record count, if the writer finalized the header.
    #[must_use]
    pub fn record_count(&self) -> Option<u64> {
        self.header.record_count
    }

    /// Loads and verifies the next chunk. Returns `false` at the end
    /// marker (after checking the declared record count and that nothing
    /// trails it).
    fn load_chunk(&mut self) -> io::Result<bool> {
        let mut head = [0u8; CHUNK_HEAD_BYTES];
        self.source.read_exact(&mut head).map_err(truncated)?;
        let count = u32::from_le_bytes(head[0..4].try_into().unwrap());
        if head[4..8] != [0u8; 4] {
            return Err(bad("non-zero reserved chunk-head bytes".into()));
        }
        if count > self.header.chunk_records {
            return Err(bad(format!(
                "chunk holds {count} records but the header caps chunks at {}",
                self.header.chunk_records
            )));
        }
        self.chunk.resize(count as usize * RECORD_BYTES, 0);
        self.source.read_exact(&mut self.chunk).map_err(truncated)?;
        let mut foot = [0u8; CHUNK_FOOT_BYTES];
        self.source.read_exact(&mut foot).map_err(truncated)?;
        let stored = u32::from_le_bytes(foot[0..4].try_into().unwrap());
        if foot[4..8] != [0u8; 4] {
            return Err(bad("non-zero reserved chunk-footer bytes".into()));
        }
        let computed = crc32c(&self.chunk);
        if stored != computed {
            return Err(bad(format!(
                "chunk CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        self.next = 0;
        if count == 0 {
            // End marker: the declared total (if any) must match, and the
            // stream must end here.
            if let Some(declared) = self.header.record_count {
                if declared != self.yielded {
                    return Err(bad(format!(
                        "header declares {declared} records but the stream holds {}",
                        self.yielded
                    )));
                }
            }
            let mut probe = [0u8; 1];
            if self.source.read(&mut probe)? != 0 {
                return Err(bad("trailing bytes after the end marker".into()));
            }
            return Ok(false);
        }
        Ok(true)
    }

    /// Pulls the next record, refilling the chunk buffer as needed.
    fn next_record(&mut self) -> io::Result<Option<Record>> {
        if self.done {
            return Ok(None);
        }
        if self.next == self.chunk.len() && !self.load_chunk()? {
            self.done = true;
            return Ok(None);
        }
        let bytes: &[u8; RECORD_BYTES] = self.chunk[self.next..self.next + RECORD_BYTES]
            .try_into()
            .unwrap();
        let record = decode_record(bytes, self.header.disk_count)?;
        self.next += RECORD_BYTES;
        self.yielded += 1;
        Ok(Some(record))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<Record>;

    fn next(&mut self) -> Option<io::Result<Record>> {
        match self.next_record() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => None,
            Err(e) => {
                // An error is terminal: don't spin on a corrupt source.
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Maps a short read of the file header to a clearer error.
fn short_header(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated trace file: incomplete header",
        )
    } else {
        e
    }
}

/// Maps a short read inside a chunk to a clearer error.
fn truncated(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated trace file: stream ends mid-chunk (missing end marker)",
        )
    } else {
        e
    }
}

/// Opens `path` as a buffered streaming reader.
///
/// # Errors
///
/// Returns any file-system error or a malformed-header error.
pub fn open<P: AsRef<Path>>(path: P) -> io::Result<TraceReader<BufReader<File>>> {
    TraceReader::new(BufReader::new(File::open(path)?))
}

/// Reads a whole file into a [`Trace`], stably sorting by arrival time
/// (live captures interleave connections, so file order need not be time
/// order). Sortedness is detected while collecting, so the common case —
/// exports and finalized captures, which are already time-ordered —
/// skips the sort entirely; the result is identical either way, since a
/// stable sort of sorted input is the identity.
///
/// # Errors
///
/// Returns any I/O, CRC, or format error.
pub fn read_trace<P: AsRef<Path>>(path: P) -> io::Result<Trace> {
    let reader = open(path)?;
    let disk_count = reader.disk_count();
    let mut records = Vec::with_capacity(
        reader
            .record_count()
            .and_then(|n| usize::try_from(n).ok())
            .unwrap_or(0),
    );
    let mut sorted = true;
    for record in reader {
        let record = record?;
        if records
            .last()
            .is_some_and(|prev: &Record| record.time < prev.time)
        {
            sorted = false;
        }
        records.push(record);
    }
    if !sorted {
        records.sort_by_key(|r| r.time);
    }
    Ok(Trace::from_records(disk_count, records))
}
