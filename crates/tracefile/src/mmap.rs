//! A minimal read-only `mmap(2)` wrapper — the only OS-specific corner
//! of the trace-file layer.
//!
//! The repo takes no external dependencies, so like
//! `crates/server/src/poller.rs` (the workspace's other `unsafe`
//! island) this module declares the three syscall entry points it needs
//! directly; std already links the C library, so the symbols resolve
//! with nothing added. All `unsafe` in `pc-tracefile` lives here,
//! behind one safe type: [`Mapping`], an immutable private file mapping
//! that derefs to `&[u8]` and unmaps on drop.
//!
//! On non-Linux hosts the module compiles to a fallback that reads the
//! file into a heap buffer behind the same API — callers see identical
//! semantics, just without the zero-copy win.

#[cfg(target_os = "linux")]
pub(crate) use imp::Mapping;

#[cfg(not(target_os = "linux"))]
pub(crate) use fallback::Mapping;

#[cfg(target_os = "linux")]
mod imp {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_long, c_void};
    use std::path::Path;

    // Protection and mapping flags (asm-generic values, all Linux arches).
    const PROT_READ: c_int = 0x1;
    const MAP_PRIVATE: c_int = 0x2;
    const MADV_SEQUENTIAL: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: c_long,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
        fn madvise(addr: *mut c_void, length: usize, advice: c_int) -> c_int;
    }

    /// A read-only, private memory mapping of a whole file.
    ///
    /// The mapping is immutable (`PROT_READ`) and private (`MAP_PRIVATE`),
    /// so concurrent readers never observe each other and the kernel
    /// pages bytes in on demand — opening a multi-gigabyte trace costs
    /// three syscalls, not a read of the file.
    #[derive(Debug)]
    pub(crate) struct Mapping {
        /// Base address, null only for the zero-length special case
        /// (`mmap` rejects empty ranges, so an empty file maps to an
        /// empty slice with no kernel object behind it).
        addr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only and private; the aliased bytes
    // never change for the lifetime of the object, so shared access
    // from any thread is sound.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `path` read-only in its entirety.
        pub(crate) fn open(path: &Path) -> io::Result<Mapping> {
            let file = File::open(path)?;
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| io::Error::other("trace file exceeds the address space"))?;
            if len == 0 {
                return Ok(Mapping {
                    addr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            let addr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if addr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            // Replay walks the file front to back; tell the kernel so it
            // reads ahead aggressively. Purely advisory — ignore failure.
            unsafe { madvise(addr, len, MADV_SEQUENTIAL) };
            Ok(Mapping { addr, len })
        }

        /// The mapped bytes.
        pub(crate) fn as_bytes(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `addr..addr+len` is exactly the live mapping
            // established in `open`, readable and immutable until drop.
            unsafe { std::slice::from_raw_parts(self.addr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: unmaps exactly the range `open` mapped, once.
                unsafe { munmap(self.addr, self.len) };
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod fallback {
    use std::io;
    use std::path::Path;

    /// Portable stand-in for the Linux mapping: the whole file read into
    /// a heap buffer. Same API, no zero-copy win.
    #[derive(Debug)]
    pub(crate) struct Mapping {
        bytes: Vec<u8>,
    }

    impl Mapping {
        /// Reads `path` in its entirety.
        pub(crate) fn open(path: &Path) -> io::Result<Mapping> {
            Ok(Mapping {
                bytes: std::fs::read(path)?,
            })
        }

        /// The file's bytes.
        pub(crate) fn as_bytes(&self) -> &[u8] {
            &self.bytes
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::Mapping;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pc-mmap-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn maps_file_contents_byte_for_byte() {
        let path = temp("roundtrip");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Mapping::open(&path).unwrap();
        assert_eq!(map.as_bytes(), payload.as_slice());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp("empty");
        std::fs::write(&path, b"").unwrap();
        let map = Mapping::open(&path).unwrap();
        assert!(map.as_bytes().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        assert!(Mapping::open(temp("does-not-exist").as_path()).is_err());
    }
}
