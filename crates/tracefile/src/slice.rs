//! Zero-parse random-access view over in-memory `.pct` bytes.

use std::io;

use pc_crc::crc32c;
use pc_trace::Record;

use crate::format::{bad, decode_record, Header, HEADER_BYTES, RECORD_BYTES};
use crate::{CHUNK_FOOT_BYTES, CHUNK_HEAD_BYTES};

/// A validated, random-access view over `.pct` bytes — e.g. a memory-mapped
/// file or [`std::fs::read`] buffer.
///
/// Construction makes one pass verifying structure, per-chunk CRCs, and
/// every record's fields; afterwards [`TraceSlice::get`] is O(1) pure
/// offset arithmetic (records are fixed-width and chunks regular), with no
/// per-access parsing or allocation. The view borrows the bytes — nothing
/// is copied.
///
/// # Examples
///
/// ```
/// use pc_tracefile::{TraceSlice, TraceWriter};
/// use pc_trace::{IoOp, Record};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let mut w = TraceWriter::new(Vec::new(), 1).unwrap();
/// for i in 0..10 {
///     w.push(Record::new(
///         SimTime::from_micros(i),
///         BlockId::new(DiskId::new(0), BlockNo::new(i)),
///         IoOp::Read,
///     ))
///     .unwrap();
/// }
/// let (bytes, _) = w.finish().unwrap();
/// let view = TraceSlice::new(&bytes).unwrap();
/// assert_eq!(view.len(), 10);
/// assert_eq!(view.get(7).block.block().number(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct TraceSlice<'a> {
    bytes: &'a [u8],
    header: Header,
    len: u64,
}

impl<'a> TraceSlice<'a> {
    /// Validates `bytes` as a complete `.pct` file.
    ///
    /// # Errors
    ///
    /// Returns `UnexpectedEof` on truncation and `InvalidData` on any
    /// CRC, structure, or record-field violation. A valid view requires
    /// the regular layout [`crate::TraceWriter`] produces: every chunk
    /// before the last data chunk completely full.
    pub fn new(bytes: &'a [u8]) -> io::Result<TraceSlice<'a>> {
        let eof =
            |what: &str| io::Error::new(io::ErrorKind::UnexpectedEof, format!("truncated {what}"));
        let head: &[u8; HEADER_BYTES] = bytes
            .get(..HEADER_BYTES)
            .ok_or_else(|| eof("trace file: incomplete header"))?
            .try_into()
            .unwrap();
        let header = Header::decode(head)?;
        // One validation walk over the chunks.
        let mut off = HEADER_BYTES;
        let mut len: u64 = 0;
        let mut saw_partial = false;
        loop {
            let chunk_head = bytes
                .get(off..off + CHUNK_HEAD_BYTES)
                .ok_or_else(|| eof("trace file: stream ends mid-chunk (missing end marker)"))?;
            let count = u32::from_le_bytes(chunk_head[0..4].try_into().unwrap());
            if chunk_head[4..8] != [0u8; 4] {
                return Err(bad("non-zero reserved chunk-head bytes".into()));
            }
            if count > header.chunk_records {
                return Err(bad(format!(
                    "chunk holds {count} records but the header caps chunks at {}",
                    header.chunk_records
                )));
            }
            if saw_partial && count != 0 {
                return Err(bad(
                    "irregular chunking: data follows a partial chunk".into()
                ));
            }
            off += CHUNK_HEAD_BYTES;
            let data_len = count as usize * RECORD_BYTES;
            let data = bytes
                .get(off..off + data_len)
                .ok_or_else(|| eof("trace file: stream ends mid-chunk (missing end marker)"))?;
            off += data_len;
            let foot = bytes
                .get(off..off + CHUNK_FOOT_BYTES)
                .ok_or_else(|| eof("trace file: stream ends mid-chunk (missing end marker)"))?;
            off += CHUNK_FOOT_BYTES;
            let stored = u32::from_le_bytes(foot[0..4].try_into().unwrap());
            if foot[4..8] != [0u8; 4] {
                return Err(bad("non-zero reserved chunk-footer bytes".into()));
            }
            let computed = crc32c(data);
            if stored != computed {
                return Err(bad(format!(
                    "chunk CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )));
            }
            if count == 0 {
                break;
            }
            for rec in data.chunks_exact(RECORD_BYTES) {
                decode_record(rec.try_into().unwrap(), header.disk_count)?;
            }
            len += u64::from(count);
            if count < header.chunk_records {
                saw_partial = true;
            }
        }
        if off != bytes.len() {
            return Err(bad("trailing bytes after the end marker".into()));
        }
        if let Some(declared) = header.record_count {
            if declared != len {
                return Err(bad(format!(
                    "header declares {declared} records but the file holds {len}"
                )));
            }
        }
        Ok(TraceSlice { bytes, header, len })
    }

    /// The decoded file header.
    #[must_use]
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Number of disks the trace addresses.
    #[must_use]
    pub fn disk_count(&self) -> u32 {
        self.header.disk_count
    }

    /// Number of records in the file.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` for a record-less file.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns record `index` in file order by pure offset arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()` — the file's bytes themselves were
    /// fully validated at construction.
    #[must_use]
    pub fn get(&self, index: u64) -> Record {
        assert!(index < self.len, "record {index} out of range {}", self.len);
        let per = u64::from(self.header.chunk_records);
        let (chunk, within) = (index / per, index % per);
        let full_chunk = (CHUNK_HEAD_BYTES + CHUNK_FOOT_BYTES) as u64 + per * RECORD_BYTES as u64;
        let off = HEADER_BYTES as u64
            + chunk * full_chunk
            + CHUNK_HEAD_BYTES as u64
            + within * RECORD_BYTES as u64;
        let off = usize::try_from(off).expect("validated file fits in memory");
        let bytes: &[u8; RECORD_BYTES] = self.bytes[off..off + RECORD_BYTES].try_into().unwrap();
        decode_record(bytes, self.header.disk_count).expect("record validated at construction")
    }

    /// Iterates the records in file order.
    pub fn iter(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceWriter;
    use pc_trace::IoOp;
    use pc_units::{BlockId, BlockNo, DiskId, SimTime};

    fn sample(n: u64, chunk_records: u32) -> Vec<u8> {
        let mut w = TraceWriter::with_chunk_records(Vec::new(), 3, chunk_records).unwrap();
        for i in 0..n {
            w.push(Record {
                time: SimTime::from_micros(i * 10),
                block: BlockId::new(DiskId::new((i % 3) as u32), BlockNo::new(i * 7)),
                blocks: 1 + i % 4,
                op: if i % 2 == 0 { IoOp::Read } else { IoOp::Write },
            })
            .unwrap();
        }
        w.finish().unwrap().0
    }

    #[test]
    fn random_access_matches_file_order() {
        // 10 records over 4-record chunks: two full chunks + a partial.
        let bytes = sample(10, 4);
        let view = TraceSlice::new(&bytes).unwrap();
        assert_eq!(view.len(), 10);
        for (i, rec) in view.iter().enumerate() {
            assert_eq!(rec.time, SimTime::from_micros(i as u64 * 10));
            assert_eq!(view.get(i as u64), rec);
        }
    }

    #[test]
    fn exact_chunk_multiple_and_empty() {
        let exact = sample(8, 4);
        assert_eq!(TraceSlice::new(&exact).unwrap().len(), 8);
        let empty = sample(0, 4);
        let view = TraceSlice::new(&empty).unwrap();
        assert!(view.is_empty());
    }

    #[test]
    fn truncation_and_bit_flips_fail_cleanly() {
        let bytes = sample(10, 4);
        // Truncate at every prefix length: never a panic, always an error
        // (any strict prefix is missing at least the end marker).
        for cut in 0..bytes.len() {
            assert!(TraceSlice::new(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Flip one bit in a record byte: CRC catches it.
        let mut flipped = bytes.clone();
        flipped[HEADER_BYTES + CHUNK_HEAD_BYTES + 3] ^= 0x40;
        let err = TraceSlice::new(&flipped).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample(2, 4);
        bytes.push(0);
        assert!(TraceSlice::new(&bytes).is_err());
    }

    #[test]
    fn out_of_range_get_panics_but_is_guarded() {
        let bytes = sample(1, 4);
        let view = TraceSlice::new(&bytes).unwrap();
        assert!(std::panic::catch_unwind(|| view.get(1)).is_err());
    }
}
