//! Binary `.pct` trace files.
//!
//! The batch drivers and the load generator both speak [`pc_trace`]
//! records; this crate gives those records a compact, versioned on-disk
//! form so traces can move between processes and machines: the synthetic
//! generators export to files, `pc-server --capture` records live load,
//! and `pc-loadgen --trace` / the batch harness replay either without
//! recompiling.
//!
//! The format is fixed-width little-endian throughout: a 32-byte header
//! (magic, version, disk geometry, record count) followed by chunks of
//! 32-byte records, each chunk closed by a CRC32C footer (computed by
//! [`pc_crc`]), and a zero-record chunk as the end-of-stream marker. It
//! reads two ways:
//!
//! * **Streamed** — [`TraceReader`] wraps any [`std::io::Read`], verifying
//!   each chunk's CRC before yielding its records.
//! * **Zero-parse** — [`TraceSlice`] views a whole in-memory (e.g.
//!   memory-mapped) file; after one validation pass, random access is
//!   pure offset arithmetic over the fixed-width records.
//! * **Mapped** — [`MappedTrace`] memory-maps a file itself (a
//!   first-party `mmap(2)` wrapper, the crate's only `unsafe`) and
//!   verifies chunk CRCs lazily, on first touch, so opening a
//!   multi-gigabyte trace is O(1) and replay streams straight off the
//!   page cache with no per-record allocation.
//!
//! Corrupt input — truncation, bit flips, bad geometry — always surfaces
//! as a clean [`std::io::Error`], never a panic.
//!
//! # Examples
//!
//! ```
//! use pc_trace::Workload;
//! use pc_tracefile::{TraceReader, TraceWriter};
//!
//! // Export 100 synthetic records to an in-memory "file"...
//! let workload = Workload::parse("synthetic").unwrap().with_requests(100);
//! let mut writer = TraceWriter::new(Vec::new(), workload.disk_count()).unwrap();
//! for record in workload.stream(7) {
//!     writer.push(record).unwrap();
//! }
//! let (bytes, count) = writer.finish().unwrap();
//! assert_eq!(count, 100);
//!
//! // ...and replaying it yields the exact same records.
//! let replayed: Vec<_> = TraceReader::new(bytes.as_slice())
//!     .unwrap()
//!     .collect::<std::io::Result<_>>()
//!     .unwrap();
//! assert_eq!(replayed, workload.stream(7).collect::<Vec<_>>());
//! ```

// `deny` rather than `forbid`: all unsafe lives in the `mmap` module,
// which opts in explicitly; everything else stays checked.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod mapped;
#[allow(unsafe_code)]
mod mmap;
mod reader;
mod slice;
mod writer;

pub use format::{
    decode_record, encode_record, Header, CHUNK_FOOT_BYTES, CHUNK_HEAD_BYTES,
    DEFAULT_CHUNK_RECORDS, FORMAT_VERSION, HEADER_BYTES, MAGIC, RECORD_BYTES, RECORD_COUNT_UNKNOWN,
};
pub use mapped::{MappedTrace, Records};
pub use reader::{open, read_trace, TraceReader};
pub use slice::TraceSlice;
pub use writer::{write_records, write_trace, TraceFileWriter, TraceWriter};
