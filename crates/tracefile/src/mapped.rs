//! Lazily-verified random access over a memory-mapped `.pct` file.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use pc_crc::crc32c;
use pc_trace::Record;

use crate::format::{bad, decode_record, Header, HEADER_BYTES, RECORD_BYTES};
use crate::mmap::Mapping;
use crate::{CHUNK_FOOT_BYTES, CHUNK_HEAD_BYTES};

/// The bytes behind a [`MappedTrace`]: a live kernel mapping for files,
/// or an owned buffer for in-memory use and tests.
#[derive(Debug)]
enum Backing {
    Map(Mapping),
    Heap(Box<[u8]>),
}

impl Backing {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Backing::Map(m) => m.as_bytes(),
            Backing::Heap(b) => b,
        }
    }
}

/// An mmap-backed [`TraceSlice`](crate::TraceSlice) with lazy per-chunk
/// CRC verification: random access without reading — let alone
/// checksumming — the whole file first.
///
/// Construction maps the file and makes one *structural* pass: header,
/// chunk framing, regularity, reserved bytes, the end marker's CRC, and
/// the declared record count are all checked, and the pass notes whether
/// record times are non-decreasing in file order (see
/// [`MappedTrace::is_time_sorted`]). Record *bytes* are not touched
/// beyond their time fields: each chunk's CRC32C is verified on first
/// access to any of its records, exactly once, tracked in an atomic
/// bitmap — so opening a multi-gigabyte trace is cheap, streaming it
/// verifies every chunk on the way through, and a corrupt chunk
/// surfaces as a clean `InvalidData` error at first touch, never a
/// panic and never a silently-served bad record.
///
/// The type is `Sync`: the bitmap is atomic (two threads racing to
/// verify the same chunk both check the same immutable bytes), so a
/// sweep can fan one map out across worker threads.
///
/// # Examples
///
/// ```
/// use pc_tracefile::{MappedTrace, TraceWriter};
/// use pc_trace::{IoOp, Record};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let mut w = TraceWriter::new(Vec::new(), 1).unwrap();
/// for i in 0..10 {
///     w.push(Record::new(
///         SimTime::from_micros(i),
///         BlockId::new(DiskId::new(0), BlockNo::new(i)),
///         IoOp::Read,
///     ))
///     .unwrap();
/// }
/// let (bytes, _) = w.finish().unwrap();
/// let map = MappedTrace::from_bytes(bytes).unwrap();
/// assert_eq!(map.len(), 10);
/// assert!(map.is_time_sorted());
/// assert_eq!(map.get(7).unwrap().block.block().number(), 7);
/// ```
#[derive(Debug)]
pub struct MappedTrace {
    backing: Backing,
    header: Header,
    len: u64,
    time_sorted: bool,
    /// One bit per data chunk, set once that chunk's CRC has verified.
    verified: Box<[AtomicU64]>,
    /// Total CRC computations performed (diagnostic: proves laziness —
    /// never exceeds the chunk count, stays at zero until first access).
    crc_computations: AtomicU64,
}

impl MappedTrace {
    /// Memory-maps `path` and validates its structure (not its record
    /// bytes — those verify lazily, per chunk, on first access).
    ///
    /// # Errors
    ///
    /// Returns any file-system or `mmap` error, `UnexpectedEof` on
    /// truncation, and `InvalidData` on any structural violation: bad
    /// header, irregular chunking, non-zero reserved bytes, a corrupt
    /// end marker, or a declared record count that disagrees with the
    /// chunk framing.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<MappedTrace> {
        MappedTrace::from_backing(Backing::Map(Mapping::open(path.as_ref())?))
    }

    /// Builds the same lazily-verified view over owned bytes — for
    /// in-memory traces and tests; no file or mapping involved.
    ///
    /// # Errors
    ///
    /// Same structural errors as [`MappedTrace::open`].
    pub fn from_bytes(bytes: Vec<u8>) -> io::Result<MappedTrace> {
        MappedTrace::from_backing(Backing::Heap(bytes.into_boxed_slice()))
    }

    /// The structural validation pass: chunk framing, reserved bytes,
    /// the end marker's CRC, trailing bytes, the declared count — plus
    /// a scan of each record's time field (bytes only, no decode, no
    /// data CRC) to detect already-time-sorted files.
    fn from_backing(backing: Backing) -> io::Result<MappedTrace> {
        let bytes = backing.as_bytes();
        let eof =
            |what: &str| io::Error::new(io::ErrorKind::UnexpectedEof, format!("truncated {what}"));
        let head: &[u8; HEADER_BYTES] = bytes
            .get(..HEADER_BYTES)
            .ok_or_else(|| eof("trace file: incomplete header"))?
            .try_into()
            .unwrap();
        let header = Header::decode(head)?;
        let mut off = HEADER_BYTES;
        let mut len: u64 = 0;
        let mut saw_partial = false;
        let mut time_sorted = true;
        let mut last_time: u64 = 0;
        loop {
            let chunk_head = bytes
                .get(off..off + CHUNK_HEAD_BYTES)
                .ok_or_else(|| eof("trace file: stream ends mid-chunk (missing end marker)"))?;
            let count = u32::from_le_bytes(chunk_head[0..4].try_into().unwrap());
            if chunk_head[4..8] != [0u8; 4] {
                return Err(bad("non-zero reserved chunk-head bytes".into()));
            }
            if count > header.chunk_records {
                return Err(bad(format!(
                    "chunk holds {count} records but the header caps chunks at {}",
                    header.chunk_records
                )));
            }
            if saw_partial && count != 0 {
                return Err(bad(
                    "irregular chunking: data follows a partial chunk".into()
                ));
            }
            off += CHUNK_HEAD_BYTES;
            let data_len = count as usize * RECORD_BYTES;
            let data = bytes
                .get(off..off + data_len)
                .ok_or_else(|| eof("trace file: stream ends mid-chunk (missing end marker)"))?;
            off += data_len;
            let foot = bytes
                .get(off..off + CHUNK_FOOT_BYTES)
                .ok_or_else(|| eof("trace file: stream ends mid-chunk (missing end marker)"))?;
            off += CHUNK_FOOT_BYTES;
            if foot[4..8] != [0u8; 4] {
                return Err(bad("non-zero reserved chunk-footer bytes".into()));
            }
            if count == 0 {
                // The end marker guards no record bytes, so lazy
                // verification would never revisit it — check its CRC
                // (of zero bytes) eagerly or a flip there would hide.
                let stored = u32::from_le_bytes(foot[0..4].try_into().unwrap());
                let computed = crc32c(data);
                if stored != computed {
                    return Err(bad(format!(
                        "chunk CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                    )));
                }
                break;
            }
            for rec in data.chunks_exact(RECORD_BYTES) {
                let time = u64::from_le_bytes(rec[0..8].try_into().unwrap());
                if time < last_time {
                    time_sorted = false;
                }
                last_time = time;
            }
            len += u64::from(count);
            if count < header.chunk_records {
                saw_partial = true;
            }
        }
        if off != bytes.len() {
            return Err(bad("trailing bytes after the end marker".into()));
        }
        if let Some(declared) = header.record_count {
            if declared != len {
                return Err(bad(format!(
                    "header declares {declared} records but the file holds {len}"
                )));
            }
        }
        let data_chunks = len.div_ceil(u64::from(header.chunk_records));
        let words = usize::try_from(data_chunks.div_ceil(64)).expect("chunk bitmap fits in memory");
        let verified = (0..words).map(|_| AtomicU64::new(0)).collect();
        Ok(MappedTrace {
            backing,
            header,
            len,
            time_sorted,
            verified,
            crc_computations: AtomicU64::new(0),
        })
    }

    /// The decoded file header.
    #[must_use]
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Number of disks the trace addresses.
    #[must_use]
    pub fn disk_count(&self) -> u32 {
        self.header.disk_count
    }

    /// Number of records in the file.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` for a record-less file.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether file order is already non-decreasing in time, as noted
    /// during the structural pass. Exports and finalized captures are;
    /// a sorted map can feed the simulator directly, with no
    /// materialize-and-sort step.
    #[must_use]
    pub fn is_time_sorted(&self) -> bool {
        self.time_sorted
    }

    /// Byte extent of data chunk `chunk`: its record bytes and stored CRC.
    fn chunk_extent(&self, chunk: u64) -> (&[u8], u32) {
        let per = u64::from(self.header.chunk_records);
        let count = per.min(self.len - chunk * per);
        let full_chunk = (CHUNK_HEAD_BYTES + CHUNK_FOOT_BYTES) as u64 + per * RECORD_BYTES as u64;
        let start = HEADER_BYTES as u64 + chunk * full_chunk + CHUNK_HEAD_BYTES as u64;
        let start = usize::try_from(start).expect("validated file fits in memory");
        let data_len = usize::try_from(count).unwrap() * RECORD_BYTES;
        let bytes = self.backing.as_bytes();
        let data = &bytes[start..start + data_len];
        let stored = u32::from_le_bytes(
            bytes[start + data_len..start + data_len + 4]
                .try_into()
                .unwrap(),
        );
        (data, stored)
    }

    /// Verifies chunk `chunk`'s CRC if this is its first touch.
    fn ensure_verified(&self, chunk: u64) -> io::Result<()> {
        let word = usize::try_from(chunk / 64).unwrap();
        let bit = 1u64 << (chunk % 64);
        // Relaxed throughout: the guarded bytes are immutable, so the
        // bitmap only dedups work — two threads racing to verify the
        // same chunk both check the same bytes and agree.
        if self.verified[word].load(Ordering::Relaxed) & bit != 0 {
            return Ok(());
        }
        let (data, stored) = self.chunk_extent(chunk);
        let computed = crc32c(data);
        self.crc_computations.fetch_add(1, Ordering::Relaxed);
        if stored != computed {
            return Err(bad(format!(
                "chunk CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        self.verified[word].fetch_or(bit, Ordering::Relaxed);
        Ok(())
    }

    /// Returns record `index` in file order, verifying its chunk's CRC
    /// first if this is the chunk's first touch.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the chunk's CRC does not match or the
    /// record's fields are malformed.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn get(&self, index: u64) -> io::Result<Record> {
        assert!(index < self.len, "record {index} out of range {}", self.len);
        let per = u64::from(self.header.chunk_records);
        let (chunk, within) = (index / per, index % per);
        self.ensure_verified(chunk)?;
        let full_chunk = (CHUNK_HEAD_BYTES + CHUNK_FOOT_BYTES) as u64 + per * RECORD_BYTES as u64;
        let off = HEADER_BYTES as u64
            + chunk * full_chunk
            + CHUNK_HEAD_BYTES as u64
            + within * RECORD_BYTES as u64;
        let off = usize::try_from(off).expect("validated file fits in memory");
        let bytes: &[u8; RECORD_BYTES] = self.backing.as_bytes()[off..off + RECORD_BYTES]
            .try_into()
            .unwrap();
        decode_record(bytes, self.header.disk_count)
    }

    /// Streams the records in file order with no per-record allocation;
    /// each chunk's CRC verifies as the stream first enters it. An error
    /// is terminal.
    #[must_use]
    pub fn records(&self) -> Records<'_> {
        Records {
            map: self,
            next: 0,
            done: false,
        }
    }

    /// Verifies every chunk's CRC and every record's fields in one pass.
    ///
    /// # Errors
    ///
    /// Returns the first CRC or record-field error.
    pub fn verify_all(&self) -> io::Result<()> {
        for record in self.records() {
            record?;
        }
        Ok(())
    }

    /// Number of chunks whose CRCs have been verified so far
    /// (diagnostic: lets tests pin the lazy-verification contract).
    #[must_use]
    pub fn verified_chunks(&self) -> u64 {
        self.verified
            .iter()
            .map(|w| u64::from(w.load(Ordering::Relaxed).count_ones()))
            .sum()
    }

    /// Total CRC computations performed so far (diagnostic: proves each
    /// chunk is checksummed at most once per map, and only on touch).
    #[must_use]
    pub fn crc_computations(&self) -> u64 {
        self.crc_computations.load(Ordering::Relaxed)
    }
}

/// Zero-allocation iterator over a [`MappedTrace`]'s records in file
/// order, from [`MappedTrace::records`]. An error is terminal.
#[derive(Debug)]
pub struct Records<'a> {
    map: &'a MappedTrace,
    next: u64,
    done: bool,
}

impl Iterator for Records<'_> {
    type Item = io::Result<Record>;

    fn next(&mut self) -> Option<io::Result<Record>> {
        if self.done || self.next == self.map.len {
            return None;
        }
        match self.map.get(self.next) {
            Ok(record) => {
                self.next += 1;
                Some(Ok(record))
            }
            Err(e) => {
                // An error is terminal: don't spin on a corrupt map.
                self.done = true;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let left = usize::try_from(self.map.len - self.next).unwrap_or(usize::MAX);
        // A corrupt chunk truncates the stream, so only the upper bound
        // is exact.
        (0, Some(left))
    }
}
