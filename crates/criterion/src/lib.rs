//! Minimal in-tree benchmark harness.
//!
//! Exposes the subset of the `criterion` API the `pc-bench` harnesses
//! use — [`Criterion`], [`BenchmarkGroup`], [`Throughput`], [`Bencher`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple wall-clock sampler instead of criterion's statistical engine.
//! The point is that `cargo bench` builds and produces usable numbers on
//! an air-gapped machine; for publication-grade statistics, swap the
//! real criterion back in by pointing the workspace `pc-criterion`
//! dependency at crates.io.
//!
//! Measurement protocol, per benchmark: one calibration pass picks an
//! iteration count targeting ~50 ms per sample, then `sample_size`
//! samples are taken and the median per-iteration time is reported
//! (median over means is robust to scheduler noise in the tails).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reporting throughput alongside wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Passed to every benchmark closure; runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness state.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "need at least one sample");
        self.sample_size = n;
        self
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_benchmark(&id.into(), samples, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "need at least one sample");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (retained for API compatibility; reporting is
    /// incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Target wall-time per sample; short enough that small `sample_size`
/// benches finish promptly, long enough to dominate timer overhead.
const TARGET_SAMPLE: Duration = Duration::from_millis(50);

fn run_benchmark<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: one iteration, to size the per-sample batch.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        _ => String::new(),
    };
    println!(
        "bench: {id:<50} {:>12} ns/iter ({samples} samples x {iters} iters){rate}",
        format_ns(median * 1e9),
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn harness_runs_end_to_end() {
        // The group runner is a plain function; it must complete quickly
        // and without panicking.
        smoke();
    }

    #[test]
    fn groups_report_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function(format!("{}-case", "fmt"), |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(12.0), "12ns");
        assert_eq!(format_ns(1_500.0), "1.500us");
        assert_eq!(format_ns(2_000_000.0), "2.000ms");
        assert_eq!(format_ns(3e9), "3.000s");
    }
}
