//! Bloom filter for cold-miss detection (paper §4).
//!
//! PA-LRU must know, for every access, whether the block has ever been
//! seen before — without storing the full set of accessed blocks. The
//! paper uses a Bloom filter: for an estimated 10⁷ blocks, 4 hash
//! functions and a vector of a few megabits keep the false-positive
//! probability negligible.

use pc_units::BlockId;

/// A fixed-size Bloom filter over [`BlockId`]s.
///
/// `insert_check` returns whether the block was *possibly present*; a
/// `false` answer is definitive ("definitely never seen" → cold miss).
///
/// # Examples
///
/// ```
/// use pc_cache::BloomFilter;
/// use pc_units::{BlockId, BlockNo, DiskId};
///
/// let mut bloom = BloomFilter::new(1 << 16, 4);
/// let b = BlockId::new(DiskId::new(1), BlockNo::new(77));
/// assert!(!bloom.insert_check(b)); // first sighting: cold
/// assert!(bloom.insert_check(b)); // now known
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
    insertions: u64,
}

impl BloomFilter {
    /// Creates a filter with `bits` bits (rounded up to a power of two,
    /// minimum 64) and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `hashes` is zero.
    #[must_use]
    pub fn new(bits: usize, hashes: u32) -> Self {
        assert!(hashes > 0, "need at least one hash function");
        let bits = bits.next_power_of_two().max(64);
        BloomFilter {
            bits: vec![0; bits / 64],
            mask: bits as u64 - 1,
            hashes,
            insertions: 0,
        }
    }

    /// Sizing matched to the paper's example: for `expected` distinct
    /// blocks, allocate ≈ 3.2 bits per block and 4 hashes (the paper's
    /// "M = 4 MB for 10⁷ blocks" works out to ~3.2 bits/block at their
    /// false-positive target).
    #[must_use]
    pub fn for_expected_blocks(expected: usize) -> Self {
        BloomFilter::new(expected.saturating_mul(4).max(1 << 10), 4)
    }

    /// Returns `true` if `block` was possibly inserted before, then
    /// inserts it. A `false` return is a guaranteed first sighting.
    pub fn insert_check(&mut self, block: BlockId) -> bool {
        let (h1, h2) = self.base_hashes(block);
        let mut present = true;
        for k in 0..u64::from(self.hashes) {
            let bit = h1.wrapping_add(k.wrapping_mul(h2)) & self.mask;
            let (word, shift) = ((bit / 64) as usize, bit % 64);
            if self.bits[word] & (1 << shift) == 0 {
                present = false;
                self.bits[word] |= 1 << shift;
            }
        }
        if !present {
            self.insertions += 1;
        }
        present
    }

    /// Queries without inserting.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        let (h1, h2) = self.base_hashes(block);
        (0..u64::from(self.hashes)).all(|k| {
            let bit = h1.wrapping_add(k.wrapping_mul(h2)) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Number of definite first sightings recorded so far.
    #[must_use]
    pub fn distinct_insertions(&self) -> u64 {
        self.insertions
    }

    /// Double hashing: two independent 64-bit hashes of the block address.
    fn base_hashes(&self, block: BlockId) -> (u64, u64) {
        let key = (u64::from(block.disk().index()) << 48) ^ block.block().number();
        let h1 = splitmix(key);
        let h2 = splitmix(h1 ^ 0xA076_1D64_78BD_642F) | 1; // odd stride
        (h1, h2)
    }
}

/// SplitMix64 finalizer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_units::{BlockNo, DiskId};

    fn blk(disk: u32, no: u64) -> BlockId {
        BlockId::new(DiskId::new(disk), BlockNo::new(no))
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1 << 14, 4);
        for i in 0..1_000 {
            f.insert_check(blk(i % 7, u64::from(i)));
        }
        for i in 0..1_000 {
            assert!(f.contains(blk(i % 7, u64::from(i))));
            assert!(f.insert_check(blk(i % 7, u64::from(i))));
        }
    }

    #[test]
    fn low_false_positive_rate_when_sized_well() {
        let mut f = BloomFilter::for_expected_blocks(10_000);
        for i in 0..10_000u64 {
            f.insert_check(blk(0, i));
        }
        let mut fp = 0;
        let probes = 10_000u64;
        for i in 0..probes {
            if f.contains(blk(1, i)) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn distinct_insertions_counts_first_sightings() {
        let mut f = BloomFilter::new(1 << 12, 4);
        f.insert_check(blk(0, 1));
        f.insert_check(blk(0, 1));
        f.insert_check(blk(0, 2));
        assert_eq!(f.distinct_insertions(), 2);
    }

    #[test]
    fn disks_do_not_collide_trivially() {
        let mut f = BloomFilter::new(1 << 14, 4);
        f.insert_check(blk(0, 42));
        assert!(!f.contains(blk(1, 42)));
    }

    #[test]
    #[should_panic(expected = "hash")]
    fn rejects_zero_hashes() {
        let _ = BloomFilter::new(64, 0);
    }
}
