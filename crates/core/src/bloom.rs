//! Bloom filter for cold-miss detection (paper §4).
//!
//! PA-LRU must know, for every access, whether the block has ever been
//! seen before — without storing the full set of accessed blocks. The
//! paper uses a Bloom filter: for an estimated 10⁷ blocks, 4 hash
//! functions and a vector of a few megabits keep the false-positive
//! probability negligible.
//!
//! This implementation is *blocked* (Putze, Sanders & Singler, "Cache-,
//! hash- and space-efficient Bloom filters"): each key's probe bits all
//! land in one 512-bit line, so `insert_check` — called once per cache
//! access on PA-LRU's hot path — costs a single cache-line touch instead
//! of `hashes` scattered ones. The false-positive rate is marginally
//! higher than a fully scattered layout at the same size, which is
//! irrelevant at the sizing above.

use pc_units::BlockId;

/// Bits per probe line. One line = eight `u64` words = 64 bytes, one
/// hardware cache line.
const LINE_BITS: u64 = 512;

/// A fixed-size blocked Bloom filter over [`BlockId`]s.
///
/// `insert_check` returns whether the block was *possibly present*; a
/// `false` answer is definitive ("definitely never seen" → cold miss).
///
/// # Examples
///
/// ```
/// use pc_cache::BloomFilter;
/// use pc_units::{BlockId, BlockNo, DiskId};
///
/// let mut bloom = BloomFilter::new(1 << 16, 4);
/// let b = BlockId::new(DiskId::new(1), BlockNo::new(77));
/// assert!(!bloom.insert_check(b)); // first sighting: cold
/// assert!(bloom.insert_check(b)); // now known
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of 512-bit lines minus one (line count is a power of two).
    line_mask: u64,
    hashes: u32,
    insertions: u64,
}

impl BloomFilter {
    /// Creates a filter with `bits` bits (rounded up to a power of two,
    /// minimum one 512-bit line) and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `hashes` is zero.
    #[must_use]
    pub fn new(bits: usize, hashes: u32) -> Self {
        assert!(hashes > 0, "need at least one hash function");
        let bits = bits.next_power_of_two().max(LINE_BITS as usize);
        BloomFilter {
            bits: vec![0; bits / 64],
            line_mask: bits as u64 / LINE_BITS - 1,
            hashes,
            insertions: 0,
        }
    }

    /// Sizing matched to the paper's example: for `expected` distinct
    /// blocks, allocate ≈ 3.2 bits per block and 4 hashes (the paper's
    /// "M = 4 MB for 10⁷ blocks" works out to ~3.2 bits/block at their
    /// false-positive target).
    #[must_use]
    pub fn for_expected_blocks(expected: usize) -> Self {
        BloomFilter::new(expected.saturating_mul(4).max(1 << 10), 4)
    }

    /// Returns `true` if `block` was possibly inserted before, then
    /// inserts it. A `false` return is a guaranteed first sighting.
    pub fn insert_check(&mut self, block: BlockId) -> bool {
        let (h1, h2) = self.base_hashes(block);
        let base = self.line_base(h1);
        if self.hashes == 4 {
            // Unrolled hot path (the paper's k = 4). With an odd stride
            // the four in-line positions are pairwise distinct mod 512,
            // so reading the pre-insert state with independent loads and
            // OR-storing afterwards is exactly the generic loop's result.
            let b0 = h1 % LINE_BITS;
            let b1 = h1.wrapping_add(h2) % LINE_BITS;
            let b2 = h1.wrapping_add(h2.wrapping_mul(2)) % LINE_BITS;
            let b3 = h1.wrapping_add(h2.wrapping_mul(3)) % LINE_BITS;
            let (i0, m0) = (base + (b0 / 64) as usize, 1u64 << (b0 % 64));
            let (i1, m1) = (base + (b1 / 64) as usize, 1u64 << (b1 % 64));
            let (i2, m2) = (base + (b2 / 64) as usize, 1u64 << (b2 % 64));
            let (i3, m3) = (base + (b3 / 64) as usize, 1u64 << (b3 % 64));
            let (w0, w1, w2, w3) = (self.bits[i0], self.bits[i1], self.bits[i2], self.bits[i3]);
            let present = (w0 & m0 != 0) & (w1 & m1 != 0) & (w2 & m2 != 0) & (w3 & m3 != 0);
            if !present {
                self.bits[i0] |= m0;
                self.bits[i1] |= m1;
                self.bits[i2] |= m2;
                self.bits[i3] |= m3;
                self.insertions += 1;
            }
            return present;
        }
        let mut present = true;
        for k in 0..u64::from(self.hashes) {
            let bit = h1.wrapping_add(k.wrapping_mul(h2)) % LINE_BITS;
            let (word, shift) = (base + (bit / 64) as usize, bit % 64);
            if self.bits[word] & (1 << shift) == 0 {
                present = false;
                self.bits[word] |= 1 << shift;
            }
        }
        if !present {
            self.insertions += 1;
        }
        present
    }

    /// Queries without inserting.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        let (h1, h2) = self.base_hashes(block);
        let base = self.line_base(h1);
        (0..u64::from(self.hashes)).all(|k| {
            let bit = h1.wrapping_add(k.wrapping_mul(h2)) % LINE_BITS;
            self.bits[base + (bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Number of definite first sightings recorded so far.
    #[must_use]
    pub fn distinct_insertions(&self) -> u64 {
        self.insertions
    }

    /// First word index of the probe line for `h1`. The line is chosen
    /// by h1's *high* bits; in-line positions use the low bits.
    #[inline]
    fn line_base(&self, h1: u64) -> usize {
        (((h1 >> 32) & self.line_mask) * (LINE_BITS / 64)) as usize
    }

    /// Double hashing: two independent 64-bit hashes of the block address.
    fn base_hashes(&self, block: BlockId) -> (u64, u64) {
        let key = (u64::from(block.disk().index()) << 48) ^ block.block().number();
        let h1 = splitmix(key);
        let h2 = splitmix(h1 ^ 0xA076_1D64_78BD_642F) | 1; // odd stride
        (h1, h2)
    }
}

/// SplitMix64 finalizer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_units::{BlockNo, DiskId};

    fn blk(disk: u32, no: u64) -> BlockId {
        BlockId::new(DiskId::new(disk), BlockNo::new(no))
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1 << 14, 4);
        for i in 0..1_000 {
            f.insert_check(blk(i % 7, u64::from(i)));
        }
        for i in 0..1_000 {
            assert!(f.contains(blk(i % 7, u64::from(i))));
            assert!(f.insert_check(blk(i % 7, u64::from(i))));
        }
    }

    #[test]
    fn low_false_positive_rate_when_sized_well() {
        let mut f = BloomFilter::for_expected_blocks(10_000);
        for i in 0..10_000u64 {
            f.insert_check(blk(0, i));
        }
        let mut fp = 0;
        let probes = 10_000u64;
        for i in 0..probes {
            if f.contains(blk(1, i)) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn distinct_insertions_counts_first_sightings() {
        let mut f = BloomFilter::new(1 << 12, 4);
        f.insert_check(blk(0, 1));
        f.insert_check(blk(0, 1));
        f.insert_check(blk(0, 2));
        assert_eq!(f.distinct_insertions(), 2);
    }

    #[test]
    fn disks_do_not_collide_trivially() {
        let mut f = BloomFilter::new(1 << 14, 4);
        f.insert_check(blk(0, 42));
        assert!(!f.contains(blk(1, 42)));
    }

    #[test]
    #[should_panic(expected = "hash")]
    fn rejects_zero_hashes() {
        let _ = BloomFilter::new(64, 0);
    }

    #[test]
    fn unrolled_four_hash_path_matches_the_generic_loop() {
        // Reference: the generic probe loop, replayed on a shadow bit
        // array. The unrolled fast path must produce identical bits,
        // identical return values and an identical insertion count.
        let mut f = BloomFilter::new(1 << 12, 4);
        let mut shadow = vec![0u64; (1usize << 12) / 64];
        let mut shadow_insertions = 0u64;
        let mut state = 0x5EEDu64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let block = blk((state % 5) as u32, state % 300);
            let (h1, h2) = f.base_hashes(block);
            let base = f.line_base(h1);
            let mut present = true;
            for k in 0..4u64 {
                let bit = h1.wrapping_add(k.wrapping_mul(h2)) % LINE_BITS;
                let (word, shift) = (base + (bit / 64) as usize, bit % 64);
                if shadow[word] & (1 << shift) == 0 {
                    present = false;
                    shadow[word] |= 1 << shift;
                }
            }
            if !present {
                shadow_insertions += 1;
            }
            assert_eq!(f.insert_check(block), present);
        }
        assert_eq!(f.bits, shadow);
        assert_eq!(f.distinct_insertions(), shadow_insertions);
    }

    #[test]
    fn probes_stay_within_one_line() {
        // The blocked layout's contract: all of a key's probe words fall
        // inside one 512-bit line, so an insert touches one cache line.
        let f = BloomFilter::new(1 << 14, 4);
        let mut state = 0xB10Cu64;
        for _ in 0..5_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let block = blk((state % 9) as u32, state);
            let (h1, h2) = f.base_hashes(block);
            let base = f.line_base(h1);
            for k in 0..4u64 {
                let bit = h1.wrapping_add(k.wrapping_mul(h2)) % LINE_BITS;
                let word = base + (bit / 64) as usize;
                assert!(word >= base && word < base + 8);
                assert!(word < f.bits.len());
            }
        }
    }
}
