//! WTDU's persistent log and crash-recovery protocol (paper §6).
//!
//! Write-through with deferred update avoids spinning up a sleeping disk
//! for writes by appending them to a per-disk *log region* on an
//! always-active persistent device. Persistence across crashes is
//! guaranteed by a timestamp protocol:
//!
//! * The first block of each region stores the region's current
//!   timestamp; every logged block is stamped with that value.
//! * When the destination disk becomes active, the (newer) cache copies of
//!   all logged blocks are flushed to the disk, the region timestamp is
//!   incremented, and the region's free pointer resets.
//! * Recovery scans each region: entries whose stamp equals the region's
//!   stamp may not have reached the data disk yet and are replayed;
//!   entries with older stamps were already flushed and are ignored.
//!
//! [`LogSpace`] models the log contents exactly (including block values,
//! so tests can verify recovered data), and [`LogSpace::recover`]
//! implements the replay scan.

use rustc_hash::FxHashMap;

use pc_units::{BlockId, BlockNo, DiskId};

/// One entry in a log region: a deferred write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Destination block on the data disk.
    pub block: BlockNo,
    /// Region timestamp at append time.
    pub stamp: u64,
    /// The written value (modelled as a version counter for testing).
    pub value: u64,
}

/// One disk's log region.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogRegion {
    /// Current region timestamp (stored in the region's first block).
    pub stamp: u64,
    /// Appended entries since the region was last reset. The free pointer
    /// is implicitly `entries.len()`.
    pub entries: Vec<LogEntry>,
}

/// The whole log device: one region per data disk.
///
/// # Examples
///
/// ```
/// use pc_cache::wtdu::LogSpace;
/// use pc_units::{BlockNo, DiskId};
///
/// let mut log = LogSpace::new(2);
/// log.append(DiskId::new(0), BlockNo::new(5), 101);
/// // Crash before the disk wakes: the write must be replayed.
/// let replay = log.recover();
/// assert_eq!(replay.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogSpace {
    regions: Vec<LogRegion>,
    appends: u64,
}

impl LogSpace {
    /// Creates a log with one region per disk, all at timestamp 0.
    #[must_use]
    pub fn new(disks: u32) -> Self {
        LogSpace {
            regions: (0..disks).map(|_| LogRegion::default()).collect(),
            appends: 0,
        }
    }

    /// Number of regions (disks).
    #[must_use]
    pub fn disk_count(&self) -> u32 {
        self.regions.len() as u32
    }

    /// Appends a deferred write for `disk`/`block` carrying `value`,
    /// stamped with the region's current timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    pub fn append(&mut self, disk: DiskId, block: BlockNo, value: u64) {
        let region = &mut self.regions[disk.as_usize()];
        region.entries.push(LogEntry {
            block,
            stamp: region.stamp,
            value,
        });
        self.appends += 1;
    }

    /// Completes a flush of `disk`'s region: the data disk now holds
    /// everything, so the timestamp increments and the free pointer
    /// resets. (In a real system the entries' space is reused; we keep
    /// them to let tests verify that recovery ignores them.)
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    pub fn flush_region(&mut self, disk: DiskId) {
        let region = &mut self.regions[disk.as_usize()];
        region.stamp += 1;
        for e in &mut region.entries {
            // Old entries stay on the device but carry stale stamps.
            debug_assert!(e.stamp < region.stamp);
        }
    }

    /// Number of entries appended since `disk`'s last flush.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    #[must_use]
    pub fn pending(&self, disk: DiskId) -> usize {
        let region = &self.regions[disk.as_usize()];
        region
            .entries
            .iter()
            .filter(|e| e.stamp == region.stamp)
            .count()
    }

    /// Total appends over the log's lifetime (each costs one log-device
    /// write).
    #[must_use]
    pub fn total_appends(&self) -> u64 {
        self.appends
    }

    /// Crash recovery: returns the writes that must be replayed to the
    /// data disks — exactly the entries whose stamp equals their region's
    /// current stamp. For multiple pending writes to the same block, the
    /// latest value wins.
    #[must_use]
    pub fn recover(&self) -> Vec<(BlockId, u64)> {
        let mut latest: FxHashMap<BlockId, u64> = FxHashMap::default();
        let mut order: Vec<BlockId> = Vec::new();
        for (d, region) in self.regions.iter().enumerate() {
            for e in &region.entries {
                if e.stamp == region.stamp {
                    let id = BlockId::new(DiskId::new(d as u32), e.block);
                    if latest.insert(id, e.value).is_none() {
                        order.push(id);
                    }
                }
            }
        }
        order.into_iter().map(|id| (id, latest[&id])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DiskId {
        DiskId::new(i)
    }

    fn b(i: u64) -> BlockNo {
        BlockNo::new(i)
    }

    #[test]
    fn pending_counts_only_current_stamp() {
        let mut log = LogSpace::new(1);
        log.append(d(0), b(1), 10);
        log.append(d(0), b(2), 20);
        assert_eq!(log.pending(d(0)), 2);
        log.flush_region(d(0));
        assert_eq!(log.pending(d(0)), 0);
        log.append(d(0), b(3), 30);
        assert_eq!(log.pending(d(0)), 1);
    }

    #[test]
    fn recovery_replays_unflushed_entries_only() {
        let mut log = LogSpace::new(2);
        log.append(d(0), b(1), 10);
        log.flush_region(d(0)); // flushed: must not replay
        log.append(d(0), b(2), 20); // pending on disk 0
        log.append(d(1), b(9), 90); // pending on disk 1
        let replay = log.recover();
        assert_eq!(replay.len(), 2);
        assert!(replay.contains(&(BlockId::new(d(0), b(2)), 20)));
        assert!(replay.contains(&(BlockId::new(d(1), b(9)), 90)));
    }

    #[test]
    fn recovery_takes_latest_value_per_block() {
        let mut log = LogSpace::new(1);
        log.append(d(0), b(5), 1);
        log.append(d(0), b(5), 2);
        log.append(d(0), b(5), 3);
        assert_eq!(log.recover(), vec![(BlockId::new(d(0), b(5)), 3)]);
    }

    #[test]
    fn clean_shutdown_recovers_nothing() {
        let mut log = LogSpace::new(3);
        log.append(d(2), b(7), 70);
        log.flush_region(d(2));
        assert!(log.recover().is_empty());
    }

    #[test]
    fn stamps_isolate_flush_generations() {
        let mut log = LogSpace::new(1);
        for round in 0..5u64 {
            log.append(d(0), b(round), round * 100);
            log.flush_region(d(0));
        }
        // Every generation flushed: nothing to replay despite 5 entries
        // physically present.
        assert!(log.recover().is_empty());
        assert_eq!(log.total_appends(), 5);
        // One more write in the live generation is recoverable.
        log.append(d(0), b(42), 4_242);
        assert_eq!(log.recover(), vec![(BlockId::new(d(0), b(42)), 4_242)]);
    }
}
