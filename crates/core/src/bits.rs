//! A hierarchical dense bitset with ordered-neighbour queries.
//!
//! [`DenseBits`] stores membership over a fixed universe `0..len` and
//! answers *predecessor* ([`last_set_before`](DenseBits::last_set_before))
//! and *successor* ([`first_set_at_or_after`](DenseBits::first_set_at_or_after))
//! queries in O(log₆₄ n) word operations: each level summarizes 64 words
//! of the level below with one bit, so a query walks up until a word has
//! a candidate bit and back down to the exact index. This replaces the
//! `BTreeMap`/`BTreeSet` range scans on OPG's per-disk deterministic-miss
//! and residency structures with flat `Vec<u64>` arithmetic.

/// A fixed-universe bitset answering predecessor/successor queries via a
/// 64-ary summary hierarchy.
#[derive(Debug, Clone)]
pub(crate) struct DenseBits {
    /// `layers[0]` is the bit array; bit `i` of `layers[k + 1]` is set iff
    /// word `i` of `layers[k]` is non-zero. The top layer is one word.
    layers: Vec<Vec<u64>>,
    len: usize,
}

impl DenseBits {
    /// An empty set over the universe `0..len`.
    pub(crate) fn new(len: usize) -> Self {
        let mut layers = Vec::new();
        let mut n = len.max(1);
        loop {
            let words = n.div_ceil(64);
            layers.push(vec![0u64; words]);
            if words <= 1 {
                break;
            }
            n = words;
        }
        DenseBits { layers, len }
    }

    /// Whether `i` is in the set.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        self.layers[0][i >> 6] & (1 << (i & 63)) != 0
    }

    /// Inserts `i`.
    #[inline]
    pub(crate) fn set(&mut self, mut i: usize) {
        debug_assert!(i < self.len);
        for layer in &mut self.layers {
            let word = &mut layer[i >> 6];
            let was = *word;
            *word |= 1 << (i & 63);
            if was != 0 {
                break; // summaries above are already set
            }
            i >>= 6;
        }
    }

    /// Removes `i` (no-op if absent).
    #[inline]
    pub(crate) fn clear(&mut self, mut i: usize) {
        debug_assert!(i < self.len);
        for layer in &mut self.layers {
            let word = &mut layer[i >> 6];
            *word &= !(1 << (i & 63));
            if *word != 0 {
                break; // summary bit above stays set
            }
            i >>= 6;
        }
    }

    /// The smallest member `>= from`, if any.
    pub(crate) fn first_set_at_or_after(&self, from: usize) -> Option<usize> {
        let mut i = from;
        let mut level = 0;
        loop {
            let word_idx = i >> 6;
            let &word = self.layers[level].get(word_idx)?;
            let masked = word & (!0u64 << (i & 63));
            if masked != 0 {
                i = (word_idx << 6) + masked.trailing_zeros() as usize;
                while level > 0 {
                    level -= 1;
                    let word = self.layers[level][i];
                    i = (i << 6) + word.trailing_zeros() as usize;
                }
                return Some(i);
            }
            level += 1;
            if level == self.layers.len() {
                return None;
            }
            i = word_idx + 1;
        }
    }

    /// The largest member `< before`, if any.
    pub(crate) fn last_set_before(&self, before: usize) -> Option<usize> {
        if before == 0 {
            return None;
        }
        let mut i = (before - 1).min(self.len.saturating_sub(1));
        let mut level = 0;
        loop {
            let word_idx = i >> 6;
            let masked = self.layers[level][word_idx] & (!0u64 >> (63 - (i & 63)));
            if masked != 0 {
                i = (word_idx << 6) + 63 - masked.leading_zeros() as usize;
                while level > 0 {
                    level -= 1;
                    let word = self.layers[level][i];
                    i = (i << 6) + 63 - word.leading_zeros() as usize;
                }
                return Some(i);
            }
            if word_idx == 0 {
                return None;
            }
            level += 1;
            if level == self.layers.len() {
                return None;
            }
            i = word_idx - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn neighbour_queries_match_a_btreeset_oracle() {
        let mut state = 0xD15Cu64;
        let mut rand = move |m: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % m as u64) as usize
        };
        for len in [1usize, 63, 64, 65, 4096, 4097, 100_000] {
            let mut bits = DenseBits::new(len);
            let mut oracle = BTreeSet::new();
            for _ in 0..2_000 {
                let i = rand(len);
                match rand(3) {
                    0 => {
                        bits.set(i);
                        oracle.insert(i);
                    }
                    1 => {
                        bits.clear(i);
                        oracle.remove(&i);
                    }
                    _ => {
                        assert_eq!(bits.get(i), oracle.contains(&i), "get({i}) len {len}");
                        assert_eq!(
                            bits.first_set_at_or_after(i),
                            oracle.range(i..).next().copied(),
                            "succ({i}) len {len}"
                        );
                        assert_eq!(
                            bits.last_set_before(i),
                            oracle.range(..i).next_back().copied(),
                            "pred({i}) len {len}"
                        );
                    }
                }
            }
            assert_eq!(bits.first_set_at_or_after(len), None);
            assert_eq!(bits.last_set_before(0), None);
        }
    }

    #[test]
    fn empty_and_boundary_universes() {
        let bits = DenseBits::new(0);
        assert_eq!(bits.first_set_at_or_after(0), None);
        assert_eq!(bits.last_set_before(0), None);

        let mut one = DenseBits::new(1);
        one.set(0);
        assert_eq!(one.first_set_at_or_after(0), Some(0));
        assert_eq!(one.last_set_before(1), Some(0));
        one.clear(0);
        assert_eq!(one.first_set_at_or_after(0), None);
    }
}
