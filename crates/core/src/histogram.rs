//! Epoch-based inter-arrival histogram (paper §4, Figure 5).
//!
//! PA-LRU approximates each disk's cumulative distribution function of
//! request interval lengths with a simple histogram: record every gap
//! between consecutive disk requests into geometric bins; at the end of an
//! epoch, read off the `p`-quantile and reset.

use pc_units::SimDuration;

/// A histogram over interval lengths with geometric bin edges.
///
/// # Examples
///
/// ```
/// use pc_cache::IntervalHistogram;
/// use pc_units::SimDuration;
///
/// let mut h = IntervalHistogram::standard();
/// for secs in [1, 2, 4, 50] {
///     h.record(SimDuration::from_secs(secs));
/// }
/// // 75% of intervals are ≤ 4 s, so the 70% quantile is small …
/// assert!(h.quantile(0.7) <= SimDuration::from_secs(8));
/// // … while the 90% quantile reaches into the 50 s bin.
/// assert!(h.quantile(0.9) >= SimDuration::from_secs(32));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalHistogram {
    /// Upper edge of each bin; the last bin is unbounded.
    edges: Vec<SimDuration>,
    counts: Vec<u64>,
    total: u64,
}

impl IntervalHistogram {
    /// Creates a histogram with the given bin upper edges (strictly
    /// increasing); one extra unbounded bin is appended.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    #[must_use]
    pub fn new(edges: Vec<SimDuration>) -> Self {
        assert!(!edges.is_empty(), "need at least one bin edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "bin edges must be strictly increasing"
        );
        let bins = edges.len() + 1;
        IntervalHistogram {
            edges,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// The standard bins used in the experiments: 22 geometric edges from
    /// 62.5 ms to ~36.4 h (doubling), spanning everything from busy-disk
    /// gaps to idle-all-epoch disks.
    #[must_use]
    pub fn standard() -> Self {
        IntervalHistogram::geometric(SimDuration::from_micros(62_500), 22)
    }

    /// Geometric (doubling) bins starting at `first`.
    ///
    /// # Panics
    ///
    /// Panics if `first` is zero or `bins` is zero.
    #[must_use]
    pub fn geometric(first: SimDuration, bins: usize) -> Self {
        assert!(!first.is_zero(), "first bin edge must be positive");
        assert!(bins > 0, "need at least one bin");
        let mut edges = Vec::with_capacity(bins);
        let mut e = first;
        for _ in 0..bins {
            edges.push(e);
            e = e * 2;
        }
        IntervalHistogram::new(edges)
    }

    /// Records one interval. Counts saturate instead of wrapping: a
    /// histogram that runs for the lifetime of a long-lived server must
    /// degrade (quantiles go slightly stale) rather than panic or wrap.
    pub fn record(&mut self, interval: SimDuration) {
        let bin = self.edges.partition_point(|&edge| edge < interval);
        self.counts[bin] = self.counts[bin].saturating_add(1);
        self.total = self.total.saturating_add(1);
    }

    /// Folds another histogram's counts into this one (saturating).
    ///
    /// Used to aggregate per-shard latency histograms into one
    /// service-wide distribution: shards record independently and the
    /// stats snapshot merges them, so quantiles are over *all* requests.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bin edges — merging
    /// only makes sense over one shared binning scheme.
    pub fn merge(&mut self, other: &IntervalHistogram) {
        assert!(
            self.edges == other.edges,
            "cannot merge histograms with different bin edges"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c = c.saturating_add(o);
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// Number of recorded intervals.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `p`-quantile: the upper edge of the first bin at which the
    /// cumulative fraction reaches `p` (i.e. `F⁻¹(p)` on the histogram
    /// CDF approximation). With no samples, returns zero. If the quantile
    /// falls in the unbounded top bin, returns [`SimDuration::MAX`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> SimDuration {
        assert!(p > 0.0 && p <= 1.0, "quantile p must be in (0,1]");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let target = (p * self.total as f64).ceil() as u64;
        let mut cumulative = 0;
        for (bin, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return self.edges.get(bin).copied().unwrap_or(SimDuration::MAX);
            }
        }
        SimDuration::MAX
    }

    /// Clears all counts (epoch rollover).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    /// The cumulative fraction of intervals not exceeding each bin edge —
    /// the Figure-5 curve, as `(edge, F(edge))` pairs.
    #[must_use]
    pub fn cdf(&self) -> Vec<(SimDuration, f64)> {
        let mut out = Vec::with_capacity(self.edges.len());
        let mut cumulative = 0u64;
        for (bin, &edge) in self.edges.iter().enumerate() {
            cumulative += self.counts[bin];
            let f = if self.total == 0 {
                0.0
            } else {
                cumulative as f64 / self.total as f64
            };
            out.push((edge, f));
        }
        out
    }
}

impl Default for IntervalHistogram {
    fn default() -> Self {
        IntervalHistogram::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_right_bins() {
        let mut h =
            IntervalHistogram::new(vec![SimDuration::from_secs(1), SimDuration::from_secs(10)]);
        h.record(SimDuration::from_millis(500)); // bin 0 (≤ 1 s)
        h.record(SimDuration::from_secs(1)); // bin 0 (edge inclusive)
        h.record(SimDuration::from_secs(5)); // bin 1
        h.record(SimDuration::from_secs(100)); // top (unbounded)
        assert_eq!(h.total(), 4);
        assert_eq!(h.quantile(0.5), SimDuration::from_secs(1));
        assert_eq!(h.quantile(0.75), SimDuration::from_secs(10));
        assert_eq!(h.quantile(1.0), SimDuration::MAX);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = IntervalHistogram::standard();
        assert_eq!(h.quantile(0.8), SimDuration::ZERO);
    }

    #[test]
    fn reset_clears_counts() {
        let mut h = IntervalHistogram::standard();
        h.record(SimDuration::from_secs(3));
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.quantile(0.8), SimDuration::ZERO);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one_without_top_bin_mass() {
        let mut h = IntervalHistogram::standard();
        for s in [1u64, 1, 2, 8, 30, 100, 2000] {
            h.record(SimDuration::from_secs(s));
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_tracks_an_exponential_sample() {
        // 80th percentile of exp(mean 13 s) ≈ 20.9 s; with doubling bins
        // the histogram answer lands on the enclosing edge (32 s, since
        // the edge ladder runs …16 s, 32 s…).
        let mut h = IntervalHistogram::standard();
        let mut state = 0x1234_5678_u64;
        for _ in 0..50_000 {
            // xorshift for a quick deterministic uniform
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let gap = -13.0 * (1.0 - u).max(1e-12).ln();
            h.record(SimDuration::from_secs_f64(gap));
        }
        let q = h.quantile(0.8);
        assert!(
            q >= SimDuration::from_secs(16) && q <= SimDuration::from_secs(32),
            "quantile {q}"
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_edges() {
        let _ = IntervalHistogram::new(vec![SimDuration::from_secs(2), SimDuration::from_secs(1)]);
    }

    #[test]
    fn merge_sums_counts_and_preserves_quantiles() {
        let mut a = IntervalHistogram::standard();
        let mut b = IntervalHistogram::standard();
        for s in [1u64, 2, 4] {
            a.record(SimDuration::from_secs(s));
        }
        for s in [50u64, 100, 200] {
            b.record(SimDuration::from_secs(s));
        }
        a.merge(&b);
        assert_eq!(a.total(), 6);
        // Half the mass is ≤ 4 s, the other half ≥ 50 s.
        assert!(a.quantile(0.5) <= SimDuration::from_secs(4));
        assert!(a.quantile(0.9) >= SimDuration::from_secs(50));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = IntervalHistogram::standard();
        a.record(SimDuration::from_secs(3));
        let pristine = a.clone();
        a.merge(&IntervalHistogram::standard());
        assert_eq!(a, pristine);
        let mut empty = IntervalHistogram::standard();
        empty.merge(&pristine);
        assert_eq!(empty, pristine);
        // Empty ∪ empty stays empty: the quantile degenerates to zero.
        let mut e2 = IntervalHistogram::standard();
        e2.merge(&IntervalHistogram::standard());
        assert_eq!(e2.total(), 0);
        assert_eq!(e2.quantile(0.99), SimDuration::ZERO);
    }

    #[test]
    fn single_bucket_histogram_merges_and_answers_quantiles() {
        // One finite bin plus the unbounded top bin — the degenerate
        // binning a minimal latency tracker might use.
        let edge = SimDuration::from_millis(1);
        let mut a = IntervalHistogram::new(vec![edge]);
        let mut b = IntervalHistogram::new(vec![edge]);
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_secs(9)); // top bin
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.quantile(0.5), edge);
        assert_eq!(a.quantile(1.0), SimDuration::MAX);
    }

    #[test]
    fn saturating_counts_survive_merge_without_wrapping() {
        let edge = SimDuration::from_millis(1);
        let mut a = IntervalHistogram::new(vec![edge]);
        let mut b = IntervalHistogram::new(vec![edge]);
        // Drive both histograms to the brink of overflow by merging a
        // seeded histogram into itself repeatedly (doubling), then merge
        // the two saturated sides together: counts must pin at u64::MAX,
        // never wrap to small values.
        a.record(SimDuration::from_micros(5));
        for _ in 0..64 {
            let snapshot = a.clone();
            a.merge(&snapshot);
        }
        b.record(SimDuration::from_micros(5));
        a.merge(&b);
        assert_eq!(a.total(), u64::MAX);
        // The distribution is still answerable and sane.
        assert_eq!(a.quantile(0.5), edge);
        let cdf = a.cdf();
        assert!((cdf[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different bin edges")]
    fn merge_rejects_mismatched_edges() {
        let mut a = IntervalHistogram::new(vec![SimDuration::from_secs(1)]);
        let b = IntervalHistogram::new(vec![SimDuration::from_secs(2)]);
        a.merge(&b);
    }
}
