//! 2Q replacement (Johnson & Shasha, VLDB'94).
//!
//! A classic scan-resistant second-level policy: new blocks enter a small
//! FIFO (`A1in`); only blocks re-referenced *after* leaving it — proven
//! re-use, remembered in the `A1out` ghost — earn a place in the main LRU
//! (`Am`).

use pc_units::{BlockId, SimTime};

use crate::policy::{IndexList, ReplacementPolicy};
use crate::table::{BlockTable, Slot};

/// The 2Q replacement policy, sized for a specific cache capacity.
///
/// Uses the paper-recommended tuning: `Kin` = 25% of the cache,
/// `Kout` = 50% (as ghost ids). The ghost is its own [`BlockTable`] +
/// FIFO, so the former O(`Kout`) membership scan on every miss is now a
/// single hash probe.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::TwoQ;
/// use pc_cache::{BlockCache, WritePolicy};
///
/// let cache = BlockCache::new(128, Box::new(TwoQ::new(128)), WritePolicy::WriteBack);
/// assert_eq!(cache.policy_name(), "2q");
/// ```
#[derive(Debug)]
pub struct TwoQ {
    kin: usize,
    kout: usize,
    /// Probationary FIFO of first-time blocks (cache slots).
    a1in: IndexList,
    /// Main LRU of proven-reuse blocks (cache slots).
    am: IndexList,
    /// Block ids per cache slot, for ghosting evicted victims.
    blocks: Vec<BlockId>,
    /// Ghost directory: block → ghost slot, plus its FIFO order.
    ghosts: BlockTable,
    ghost_order: IndexList,
    /// Pending classification for the block being inserted.
    pending_hot: bool,
}

impl TwoQ {
    /// Creates 2Q for a cache of `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "2Q needs a positive capacity");
        TwoQ {
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            a1in: IndexList::new(),
            am: IndexList::new(),
            blocks: Vec::new(),
            ghosts: BlockTable::new(),
            ghost_order: IndexList::new(),
            pending_hot: false,
        }
    }

    /// Sizes of (`A1in`, `A1out`, `Am`) — diagnostic.
    #[must_use]
    pub fn sizes(&self) -> (usize, usize, usize) {
        (self.a1in.len(), self.ghost_order.len(), self.am.len())
    }

    fn remember_ghost(&mut self, block: BlockId) {
        let g = self.ghosts.intern(block);
        self.ghost_order.push_back(g);
        if self.ghost_order.len() > self.kout {
            if let Some(old) = self.ghost_order.pop_front() {
                self.ghosts.release(old);
            }
        }
    }

    fn record_block(&mut self, slot: Slot, block: BlockId) {
        if slot.index() >= self.blocks.len() {
            self.blocks.resize(slot.index() + 1, BlockId::default());
        }
        self.blocks[slot.index()] = block;
    }
}

impl ReplacementPolicy for TwoQ {
    fn name(&self) -> String {
        "2q".to_owned()
    }

    fn on_access(&mut self, slot: Option<Slot>, block: BlockId, _time: SimTime) {
        if let Some(slot) = slot {
            // Hits in A1in deliberately do nothing (correlated references
            // shouldn't promote); hits in Am refresh the LRU position.
            if self.am.contains(slot) {
                self.am.move_to_front(slot);
            }
        } else {
            // A miss on a remembered ghost proves real re-use.
            if let Some(g) = self.ghosts.lookup(block) {
                self.ghost_order.remove(g);
                self.ghosts.release(g);
                self.pending_hot = true;
            } else {
                self.pending_hot = false;
            }
        }
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, _time: SimTime) {
        self.record_block(slot, block);
        if self.pending_hot {
            self.am.push_front(slot);
            self.pending_hot = false;
        } else {
            self.a1in.push_back(slot);
        }
    }

    fn evict(&mut self) -> Slot {
        if self.a1in.len() >= self.kin || self.am.is_empty() {
            if let Some(victim) = self.a1in.pop_front() {
                let block = self.blocks[victim.index()];
                self.remember_ghost(block);
                return victim;
            }
        }
        if let Some(victim) = self.am.pop_back() {
            return victim;
        }
        self.a1in.pop_front().expect("no block to evict")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses, seq_trace, Feeder};
    use crate::policy::Lru;

    #[test]
    fn behaves_like_a_cache() {
        let t = seq_trace(&[1, 2, 3, 1, 2, 3, 4, 5, 1, 2]);
        let misses = count_misses(&t, 3, Box::new(TwoQ::new(3)));
        assert!((5..=10).contains(&misses), "misses {misses}");
    }

    #[test]
    fn ghost_reuse_promotes_to_am() {
        let mut q = TwoQ::new(8); // kin 2
        let mut f = Feeder::new();
        f.access(&mut q, blk(0, 1), SimTime::ZERO);
        f.access(&mut q, blk(0, 2), SimTime::ZERO);
        f.access(&mut q, blk(0, 3), SimTime::ZERO); // a1in over kin on next evict
        assert_eq!(f.evict(&mut q), blk(0, 1), "FIFO front leaves a1in");
        // Block 1 is now a ghost; touching it again makes it hot.
        f.access(&mut q, blk(0, 1), SimTime::ZERO);
        let (_, _, am) = q.sizes();
        assert_eq!(am, 1, "ghost reuse lands in Am");
    }

    #[test]
    fn one_shot_scans_never_pollute_am() {
        // Hot triple with reuse distance beyond the cache (LRU thrashes)
        // plus two one-shot scan blocks per round: only 2Q's ghost
        // promotion keeps the triple resident in Am.
        let mut pattern = Vec::new();
        for round in 0..60u64 {
            pattern.extend([1, 2, 3, 1_000 + 2 * round, 1_001 + 2 * round]);
        }
        let t = seq_trace(&pattern);
        let two_q = count_misses(&t, 4, Box::new(TwoQ::new(4)));
        let lru = count_misses(&t, 4, Box::new(Lru::new()));
        assert_eq!(lru, 300, "LRU thrashes every round");
        assert!(two_q < lru / 2, "2q {two_q} vs lru {lru}");
    }

    #[test]
    fn eviction_prefers_probation_when_full() {
        let mut q = TwoQ::new(4); // kin 1
        let mut f = Feeder::new();
        for n in 1..=4u64 {
            f.access(&mut q, blk(0, n), SimTime::ZERO);
        }
        // All four sit in a1in (nothing proved reuse): FIFO eviction.
        assert_eq!(f.evict(&mut q), blk(0, 1));
        assert_eq!(f.evict(&mut q), blk(0, 2));
    }

    #[test]
    fn ghost_list_is_bounded() {
        let mut q = TwoQ::new(4); // kout 2
        for n in 0..100u64 {
            q.remember_ghost(blk(0, n));
        }
        assert!(q.sizes().1 <= 2);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn rejects_zero_capacity() {
        let _ = TwoQ::new(0);
    }
}
