//! MQ — the Multi-Queue second-level buffer-cache policy (Zhou, Philbin
//! & Li, USENIX'01).
//!
//! Cited by the paper both as related work and as a PA-wrappable policy.
//! MQ keeps `m` LRU queues; a block with reference count `f` lives in
//! queue `⌊log₂ f⌋` (capped), so frequently-reused blocks climb to
//! higher queues and survive the weak recency locality of second-level
//! caches. Blocks expire down the ladder when unreferenced for
//! `life_time` accesses, and a ghost history (`Qout`) remembers the
//! reference counts of recently evicted blocks.

use pc_units::{BlockId, SimTime};

use crate::policy::{IndexList, ReplacementPolicy};
use crate::table::{BlockTable, Slot};

/// Per-resident-slot metadata.
#[derive(Debug, Clone, Copy, Default)]
struct BlockMeta {
    frequency: u64,
    queue: usize,
    expires: u64,
}

/// The Multi-Queue replacement policy.
///
/// All queue moves are O(1): residents are tracked by cache slot in
/// intrusive [`IndexList`]s with a flat metadata vector, and the ghost
/// history is its own [`BlockTable`] + FIFO.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::Mq;
/// use pc_cache::{BlockCache, WritePolicy};
///
/// let cache = BlockCache::new(512, Box::new(Mq::new(512)), WritePolicy::WriteBack);
/// assert_eq!(cache.policy_name(), "mq");
/// ```
#[derive(Debug)]
pub struct Mq {
    /// One LRU list per frequency level (front = most recent).
    queues: Vec<IndexList>,
    /// Metadata per cache slot.
    meta: Vec<BlockMeta>,
    /// Block ids per cache slot, for ghosting evicted victims.
    blocks: Vec<BlockId>,
    /// Ghost history of evicted blocks' reference counts, FIFO-bounded.
    ghosts: BlockTable,
    ghost_freq: Vec<u64>,
    ghost_order: IndexList,
    ghost_capacity: usize,
    life_time: u64,
    clock: u64,
}

impl Mq {
    /// MQ with the common defaults for a cache of `capacity` blocks:
    /// 8 queues, a ghost history of `capacity` ids, and a lifetime of
    /// 2 × capacity accesses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MQ needs a positive capacity");
        Mq::with_parameters(8, capacity, (capacity as u64) * 2)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `queues` or `life_time` is zero.
    #[must_use]
    pub fn with_parameters(queues: usize, ghost_capacity: usize, life_time: u64) -> Self {
        assert!(queues > 0, "MQ needs at least one queue");
        assert!(life_time > 0, "MQ needs a positive lifetime");
        Mq {
            queues: (0..queues).map(|_| IndexList::new()).collect(),
            meta: Vec::new(),
            blocks: Vec::new(),
            ghosts: BlockTable::new(),
            ghost_freq: Vec::new(),
            ghost_order: IndexList::new(),
            ghost_capacity: ghost_capacity.max(1),
            life_time,
            clock: 0,
        }
    }

    /// The queue a block with reference count `f` belongs in.
    fn queue_for(&self, frequency: u64) -> usize {
        (63 - frequency.max(1).leading_zeros() as usize).min(self.queues.len() - 1)
    }

    /// Places a slot into its frequency queue with a fresh lifetime.
    fn enqueue(&mut self, slot: Slot, frequency: u64) {
        let queue = self.queue_for(frequency);
        self.queues[queue].push_front(slot);
        if slot.index() >= self.meta.len() {
            self.meta.resize(slot.index() + 1, BlockMeta::default());
        }
        self.meta[slot.index()] = BlockMeta {
            frequency,
            queue,
            expires: self.clock + self.life_time,
        };
    }

    /// MQ's `Adjust`: demote expired queue heads one level, refreshing
    /// their lifetime.
    fn adjust(&mut self) {
        for q in (1..self.queues.len()).rev() {
            // At most one demotion per queue per access, like the paper.
            let Some(head) = self.queues[q].back() else {
                continue;
            };
            let meta = self.meta[head.index()];
            if meta.expires < self.clock {
                self.queues[q].remove(head);
                self.queues[q - 1].push_front(head);
                self.meta[head.index()] = BlockMeta {
                    queue: q - 1,
                    expires: self.clock + self.life_time,
                    ..meta
                };
            }
        }
    }

    fn remember_ghost(&mut self, block: BlockId, frequency: u64) {
        if let Some(g) = self.ghosts.lookup(block) {
            // Already remembered: refresh the count, keep the FIFO spot.
            self.ghost_freq[g.index()] = frequency;
            return;
        }
        let g = self.ghosts.intern(block);
        if g.index() >= self.ghost_freq.len() {
            self.ghost_freq.resize(g.index() + 1, 0);
        }
        self.ghost_freq[g.index()] = frequency;
        self.ghost_order.push_back(g);
        if self.ghost_order.len() > self.ghost_capacity {
            if let Some(old) = self.ghost_order.pop_front() {
                self.ghosts.release(old);
            }
        }
    }
}

impl ReplacementPolicy for Mq {
    fn name(&self) -> String {
        "mq".to_owned()
    }

    fn on_access(&mut self, slot: Option<Slot>, _block: BlockId, _time: SimTime) {
        self.clock += 1;
        if let Some(slot) = slot {
            let meta = self.meta[slot.index()];
            self.queues[meta.queue].remove(slot);
            self.enqueue(slot, meta.frequency + 1);
        }
        self.adjust();
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, _time: SimTime) {
        if slot.index() >= self.blocks.len() {
            self.blocks.resize(slot.index() + 1, BlockId::default());
        }
        self.blocks[slot.index()] = block;
        // A returning block resumes its remembered reference count (the
        // ghost entry is read, not consumed).
        let frequency = match self.ghosts.lookup(block) {
            Some(g) => self.ghost_freq[g.index()] + 1,
            None => 1,
        };
        self.enqueue(slot, frequency);
    }

    fn evict(&mut self) -> Slot {
        for q in 0..self.queues.len() {
            if let Some(victim) = self.queues[q].pop_back() {
                let frequency = self.meta[victim.index()].frequency;
                self.remember_ghost(self.blocks[victim.index()], frequency);
                return victim;
            }
        }
        panic!("no block to evict");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses, seq_trace, Feeder};
    use crate::policy::Lru;

    #[test]
    fn queue_assignment_is_logarithmic() {
        let mq = Mq::new(64);
        assert_eq!(mq.queue_for(1), 0);
        assert_eq!(mq.queue_for(2), 1);
        assert_eq!(mq.queue_for(3), 1);
        assert_eq!(mq.queue_for(4), 2);
        assert_eq!(mq.queue_for(1 << 20), 7, "capped at the top queue");
    }

    #[test]
    fn frequent_blocks_outlive_one_shot_traffic() {
        // Second-level pattern: a small hot set re-referenced with stack
        // distances beyond the cache size, through one-shot traffic. The
        // ghost history must be deep enough to carry the hot blocks'
        // frequencies across their early evictions.
        let mut pattern = Vec::new();
        for round in 0..40u64 {
            for hot in 0..3u64 {
                pattern.push(hot);
            }
            for one_shot in 0..5u64 {
                pattern.push(10_000 + round * 5 + one_shot);
            }
        }
        let t = seq_trace(&pattern);
        let mq = count_misses(&t, 6, Box::new(Mq::with_parameters(8, 64, 100)));
        let lru = count_misses(&t, 6, Box::new(Lru::new()));
        assert!(mq < lru, "mq {mq} vs lru {lru}");
    }

    #[test]
    fn ghost_restores_frequency() {
        let mut mq = Mq::new(2);
        let mut f = Feeder::new();
        // Build up frequency on block 1.
        f.access(&mut mq, blk(0, 1), SimTime::ZERO);
        for _ in 0..7 {
            f.access(&mut mq, blk(0, 1), SimTime::ZERO);
        }
        let q_before = mq.meta[f.slot_of(blk(0, 1)).index()].queue;
        assert!(q_before >= 2);
        // Evict it, then bring it back: it must not restart at queue 0.
        assert_eq!(f.evict(&mut mq), blk(0, 1));
        f.access(&mut mq, blk(0, 1), SimTime::ZERO);
        let q_after = mq.meta[f.slot_of(blk(0, 1)).index()].queue;
        assert!(q_after >= 2, "frequency survived eviction");
    }

    #[test]
    fn expired_heads_demote() {
        let mut mq = Mq::with_parameters(4, 16, 2);
        let mut f = Feeder::new();
        f.access(&mut mq, blk(0, 1), SimTime::ZERO);
        for _ in 0..3 {
            f.access(&mut mq, blk(0, 1), SimTime::ZERO);
        }
        let slot = f.slot_of(blk(0, 1));
        let high = mq.meta[slot.index()].queue;
        assert!(high >= 1);
        // Touch other blocks until block 1's lifetime lapses.
        for i in 0..10u64 {
            f.access(&mut mq, blk(0, 100 + i), SimTime::ZERO);
        }
        assert!(
            mq.meta[slot.index()].queue < high,
            "block should demote after expiring"
        );
    }

    #[test]
    fn ghost_history_is_bounded() {
        let mut mq = Mq::with_parameters(8, 4, 100);
        for i in 0..100u64 {
            mq.remember_ghost(blk(0, i), 1);
        }
        assert!(mq.ghosts.len() <= 4);
        assert_eq!(mq.ghosts.len(), mq.ghost_order.len());
    }

    #[test]
    #[should_panic(expected = "no block")]
    fn evict_on_empty_panics() {
        Mq::new(4).evict();
    }
}
