//! MQ — the Multi-Queue second-level buffer-cache policy (Zhou, Philbin
//! & Li, USENIX'01).
//!
//! Cited by the paper both as related work and as a PA-wrappable policy.
//! MQ keeps `m` LRU queues; a block with reference count `f` lives in
//! queue `⌊log₂ f⌋` (capped), so frequently-reused blocks climb to
//! higher queues and survive the weak recency locality of second-level
//! caches. Blocks expire down the ladder when unreferenced for
//! `life_time` accesses, and a ghost history (`Qout`) remembers the
//! reference counts of recently evicted blocks.

use std::collections::{HashMap, VecDeque};

use pc_units::{BlockId, SimTime};

use crate::policy::pa_lru::Stack;
use crate::policy::ReplacementPolicy;

/// Per-resident-block metadata.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    frequency: u64,
    queue: usize,
    expires: u64,
}

/// The Multi-Queue replacement policy.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::Mq;
/// use pc_cache::{BlockCache, WritePolicy};
///
/// let cache = BlockCache::new(512, Box::new(Mq::new(512)), WritePolicy::WriteBack);
/// assert_eq!(cache.policy_name(), "mq");
/// ```
#[derive(Debug)]
pub struct Mq {
    queues: Vec<Stack>,
    meta: HashMap<BlockId, BlockMeta>,
    /// Ghost history of evicted blocks' reference counts, FIFO-bounded.
    ghost: HashMap<BlockId, u64>,
    ghost_order: VecDeque<BlockId>,
    ghost_capacity: usize,
    life_time: u64,
    clock: u64,
    next_seq: u64,
}

impl Mq {
    /// MQ with the common defaults for a cache of `capacity` blocks:
    /// 8 queues, a ghost history of `capacity` ids, and a lifetime of
    /// 2 × capacity accesses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MQ needs a positive capacity");
        Mq::with_parameters(8, capacity, (capacity as u64) * 2)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `queues` or `life_time` is zero.
    #[must_use]
    pub fn with_parameters(queues: usize, ghost_capacity: usize, life_time: u64) -> Self {
        assert!(queues > 0, "MQ needs at least one queue");
        assert!(life_time > 0, "MQ needs a positive lifetime");
        Mq {
            queues: (0..queues).map(|_| Stack::default()).collect(),
            meta: HashMap::new(),
            ghost: HashMap::new(),
            ghost_order: VecDeque::new(),
            ghost_capacity: ghost_capacity.max(1),
            life_time,
            clock: 0,
            next_seq: 0,
        }
    }

    /// The queue a block with reference count `f` belongs in.
    fn queue_for(&self, frequency: u64) -> usize {
        (63 - frequency.max(1).leading_zeros() as usize).min(self.queues.len() - 1)
    }

    fn seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Places a block into its frequency queue with a fresh lifetime.
    fn enqueue(&mut self, block: BlockId, frequency: u64) {
        let queue = self.queue_for(frequency);
        let seq = self.seq();
        self.queues[queue].touch(block, seq);
        self.meta.insert(
            block,
            BlockMeta {
                frequency,
                queue,
                expires: self.clock + self.life_time,
            },
        );
    }

    /// MQ's `Adjust`: demote expired queue heads one level, refreshing
    /// their lifetime.
    fn adjust(&mut self) {
        for q in (1..self.queues.len()).rev() {
            // At most one demotion per queue per access, like the paper.
            let Some(head) = self.queues[q].peek_bottom() else {
                continue;
            };
            let meta = self.meta[&head];
            if meta.expires < self.clock {
                self.queues[q].remove(head);
                let seq = self.seq();
                self.queues[q - 1].touch(head, seq);
                self.meta.insert(
                    head,
                    BlockMeta {
                        queue: q - 1,
                        expires: self.clock + self.life_time,
                        ..meta
                    },
                );
            }
        }
    }

    fn remember_ghost(&mut self, block: BlockId, frequency: u64) {
        if self.ghost.insert(block, frequency).is_none() {
            self.ghost_order.push_back(block);
            if self.ghost_order.len() > self.ghost_capacity {
                if let Some(old) = self.ghost_order.pop_front() {
                    self.ghost.remove(&old);
                }
            }
        }
    }
}

impl ReplacementPolicy for Mq {
    fn name(&self) -> String {
        "mq".to_owned()
    }

    fn on_access(&mut self, block: BlockId, _time: SimTime, hit: bool) {
        self.clock += 1;
        if hit {
            let meta = self.meta[&block];
            self.queues[meta.queue].remove(block);
            self.enqueue(block, meta.frequency + 1);
        }
        self.adjust();
    }

    fn on_insert(&mut self, block: BlockId, _time: SimTime) {
        // A returning block resumes its remembered reference count.
        let frequency = self.ghost.get(&block).copied().unwrap_or(0) + 1;
        self.enqueue(block, frequency);
    }

    fn evict(&mut self) -> BlockId {
        for q in 0..self.queues.len() {
            if let Some(victim) = self.queues[q].pop_bottom() {
                let meta = self.meta.remove(&victim).expect("victim has metadata");
                self.remember_ghost(victim, meta.frequency);
                return victim;
            }
        }
        panic!("no block to evict");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses, seq_trace};
    use crate::policy::Lru;

    #[test]
    fn queue_assignment_is_logarithmic() {
        let mq = Mq::new(64);
        assert_eq!(mq.queue_for(1), 0);
        assert_eq!(mq.queue_for(2), 1);
        assert_eq!(mq.queue_for(3), 1);
        assert_eq!(mq.queue_for(4), 2);
        assert_eq!(mq.queue_for(1 << 20), 7, "capped at the top queue");
    }

    #[test]
    fn frequent_blocks_outlive_one_shot_traffic() {
        // Second-level pattern: a small hot set re-referenced with stack
        // distances beyond the cache size, through one-shot traffic. The
        // ghost history must be deep enough to carry the hot blocks'
        // frequencies across their early evictions.
        let mut pattern = Vec::new();
        for round in 0..40u64 {
            for hot in 0..3u64 {
                pattern.push(hot);
            }
            for one_shot in 0..5u64 {
                pattern.push(10_000 + round * 5 + one_shot);
            }
        }
        let t = seq_trace(&pattern);
        let mq = count_misses(&t, 6, Box::new(Mq::with_parameters(8, 64, 100)));
        let lru = count_misses(&t, 6, Box::new(Lru::new()));
        assert!(mq < lru, "mq {mq} vs lru {lru}");
    }

    #[test]
    fn ghost_restores_frequency() {
        let mut mq = Mq::new(2);
        // Build up frequency on block 1.
        mq.on_access(blk(0, 1), SimTime::ZERO, false);
        mq.on_insert(blk(0, 1), SimTime::ZERO);
        for _ in 0..7 {
            mq.on_access(blk(0, 1), SimTime::ZERO, true);
        }
        let q_before = mq.meta[&blk(0, 1)].queue;
        assert!(q_before >= 2);
        // Evict it, then bring it back: it must not restart at queue 0.
        mq.queues[q_before].remove(blk(0, 1));
        let meta = mq.meta.remove(&blk(0, 1)).unwrap();
        mq.remember_ghost(blk(0, 1), meta.frequency);
        mq.on_access(blk(0, 1), SimTime::ZERO, false);
        mq.on_insert(blk(0, 1), SimTime::ZERO);
        assert!(mq.meta[&blk(0, 1)].queue >= 2, "frequency survived eviction");
    }

    #[test]
    fn expired_heads_demote() {
        let mut mq = Mq::with_parameters(4, 16, 2);
        mq.on_access(blk(0, 1), SimTime::ZERO, false);
        mq.on_insert(blk(0, 1), SimTime::ZERO);
        for _ in 0..3 {
            mq.on_access(blk(0, 1), SimTime::ZERO, true);
        }
        let high = mq.meta[&blk(0, 1)].queue;
        assert!(high >= 1);
        // Touch other blocks until block 1's lifetime lapses.
        for i in 0..10u64 {
            mq.on_access(blk(0, 100 + i), SimTime::ZERO, false);
            mq.on_insert(blk(0, 100 + i), SimTime::ZERO);
        }
        assert!(
            mq.meta[&blk(0, 1)].queue < high,
            "block should demote after expiring"
        );
    }

    #[test]
    fn ghost_history_is_bounded() {
        let mut mq = Mq::with_parameters(8, 4, 100);
        for i in 0..100u64 {
            mq.remember_ghost(blk(0, i), 1);
        }
        assert!(mq.ghost.len() <= 4);
        assert_eq!(mq.ghost.len(), mq.ghost_order.len());
    }

    #[test]
    #[should_panic(expected = "no block")]
    fn evict_on_empty_panics() {
        Mq::new(4).evict();
    }
}
