//! PA-LRU — the on-line power-aware replacement algorithm (paper §4).
//!
//! PA-LRU couples the per-disk [`DiskClassifier`] (Bloom-filter cold-miss
//! tracking + epoch interval histograms, Figure 5) with two LRU stacks:
//! LRU0 holds blocks of *regular* disks, LRU1 blocks of *priority* disks
//! (few cold accesses, long idle intervals — disks that can actually
//! sleep if their working set stays cached). Eviction always drains LRU0
//! first, so priority-disk blocks survive longer and their disks' idle
//! periods stretch into the deep power modes.

use pc_diskmodel::{ModeId, PowerModel};
use pc_units::{BlockId, DiskId, SimDuration, SimTime};

use crate::policy::{DiskClassifier, PairedList, ReplacementPolicy};
use crate::table::Slot;

/// Tuning knobs for PA classification (used by [`PaLru`] and the generic
/// [`Pa`](crate::policy::Pa) wrapper).
///
/// The defaults are the paper's §5.1 settings: 15-minute epochs, p = 80%,
/// α = 50%, and T equal to the break-even time of the first NAP mode.
#[derive(Debug, Clone, PartialEq)]
pub struct PaLruConfig {
    /// Epoch length for reclassification.
    pub epoch: SimDuration,
    /// Cumulative probability p at which the interval CDF is probed.
    pub quantile: f64,
    /// Maximum cold-access fraction α for the priority class.
    pub cold_threshold: f64,
    /// Minimum `F⁻¹(p)` for the priority class (the paper sets this to
    /// NAP1's break-even time).
    pub interval_threshold: SimDuration,
    /// Bloom filter size, in bits.
    pub bloom_bits: usize,
    /// Bloom filter hash count.
    pub bloom_hashes: u32,
}

impl PaLruConfig {
    /// The paper's settings against a concrete power model: T = the
    /// break-even time of the shallowest low-power mode.
    #[must_use]
    pub fn for_power_model(power: &PowerModel) -> Self {
        let first_low = ModeId::new(1.min(power.mode_count() - 1));
        PaLruConfig {
            interval_threshold: power.break_even(first_low),
            ..PaLruConfig::default()
        }
    }
}

impl Default for PaLruConfig {
    fn default() -> Self {
        PaLruConfig {
            epoch: SimDuration::from_secs(15 * 60),
            quantile: 0.8,
            cold_threshold: 0.5,
            interval_threshold: SimDuration::from_secs(10),
            bloom_bits: 1 << 22,
            bloom_hashes: 4,
        }
    }
}

/// The power-aware LRU replacement policy.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{PaLru, PaLruConfig};
/// use pc_cache::{BlockCache, WritePolicy};
///
/// let pa = PaLru::new(PaLruConfig::default());
/// let cache = BlockCache::new(1024, Box::new(pa), WritePolicy::WriteBack);
/// assert_eq!(cache.policy_name(), "pa-lru");
/// ```
#[derive(Debug)]
pub struct PaLru {
    classifier: DiskClassifier,
    /// The two LRU stacks sharing one set of link arrays: list 0 holds
    /// regular-class blocks (drained first), list 1 priority-class ones.
    stacks: PairedList,
}

/// [`PairedList`] index of the regular-class stack.
const LRU0: usize = 0;
/// [`PairedList`] index of the priority-class stack.
const LRU1: usize = 1;

impl PaLru {
    /// Creates PA-LRU with the given configuration.
    #[must_use]
    pub fn new(config: PaLruConfig) -> Self {
        PaLru {
            classifier: DiskClassifier::new(config),
            stacks: PairedList::new(),
        }
    }

    /// Whether `disk` is currently classified as priority.
    #[must_use]
    pub fn is_priority(&self, disk: DiskId) -> bool {
        self.classifier.is_priority(disk)
    }

    /// Number of completed classification epochs.
    #[must_use]
    pub fn epochs_completed(&self) -> u64 {
        self.classifier.epochs_completed()
    }

    /// Sizes of (LRU0, LRU1).
    #[must_use]
    pub fn stack_sizes(&self) -> (usize, usize) {
        (self.stacks.len(LRU0), self.stacks.len(LRU1))
    }

    /// Test-only hook: force a disk's class.
    #[cfg(test)]
    pub(crate) fn force_priority(&mut self, disk: DiskId) {
        self.classifier.force_priority(disk);
    }

    /// Places (or re-homes) a slot at the top of the stack matching its
    /// disk's current class.
    fn place(&mut self, slot: Slot, disk: DiskId) {
        self.stacks.remove(slot);
        let which = if self.is_priority(disk) { LRU1 } else { LRU0 };
        self.stacks.push_front(slot, which);
    }
}

impl ReplacementPolicy for PaLru {
    fn name(&self) -> String {
        "pa-lru".to_owned()
    }

    fn on_access(&mut self, slot: Option<Slot>, block: BlockId, time: SimTime) {
        self.classifier.observe(block, time, slot.is_none());
        if let Some(slot) = slot {
            self.place(slot, block.disk());
        }
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, _time: SimTime) {
        self.place(slot, block.disk());
    }

    fn evict(&mut self) -> Slot {
        self.stacks
            .pop_back(LRU0)
            .or_else(|| self.stacks.pop_back(LRU1))
            .expect("no block to evict")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, Feeder};

    /// Drives the raw policy protocol against an unbounded notional cache
    /// (no evictions), forgetting `b` afterwards when requested.
    fn feed(pa: &mut PaLru, f: &mut Feeder, b: BlockId, t: SimTime) {
        f.access(pa, b, t);
    }

    fn short_epoch_config() -> PaLruConfig {
        PaLruConfig {
            epoch: SimDuration::from_secs(100),
            interval_threshold: SimDuration::from_secs(10),
            ..PaLruConfig::default()
        }
    }

    #[test]
    fn classifies_quiet_low_cold_disk_as_priority() {
        let mut pa = PaLru::new(short_epoch_config());
        let mut f = Feeder::new();
        // Disk 0: dense stream of always-new blocks (high cold fraction,
        // short gaps) => regular.
        // Disk 1: few blocks revisited with long gaps => priority.
        for i in 0..250u64 {
            let t = SimTime::from_secs(i);
            feed(&mut pa, &mut f, blk(0, 10_000 + i), t);
            if i % 20 == 0 {
                // Misses on disk 1 arrive 20 s apart over a tiny recurring
                // working set; cold only within the first epoch.
                let b = blk(1, (i / 20) % 3);
                let was_resident = f.contains(b);
                feed(&mut pa, &mut f, b, t);
                if !was_resident {
                    // Force future misses: evict it right back out of the
                    // notional cache (it sits atop one of the stacks).
                    let slot = f.slot_of(b);
                    pa.stacks.remove(slot);
                    let _ = f.release(b);
                }
            }
        }
        assert!(pa.epochs_completed() >= 2);
        assert!(!pa.is_priority(DiskId::new(0)), "disk 0 must stay regular");
        assert!(
            pa.is_priority(DiskId::new(1)),
            "disk 1 must become priority"
        );
    }

    #[test]
    fn evicts_regular_stack_first() {
        let mut pa = PaLru::new(short_epoch_config());
        pa.force_priority(DiskId::new(1));
        let mut f = Feeder::new();
        feed(&mut pa, &mut f, blk(1, 1), SimTime::from_secs(1));
        feed(&mut pa, &mut f, blk(0, 2), SimTime::from_secs(2));
        feed(&mut pa, &mut f, blk(1, 3), SimTime::from_secs(3));
        // Oldest overall is the priority block (1,1); but eviction drains
        // LRU0 (the regular block) first.
        assert_eq!(f.evict(&mut pa), blk(0, 2));
        assert_eq!(f.evict(&mut pa), blk(1, 1));
        assert_eq!(f.evict(&mut pa), blk(1, 3));
    }

    #[test]
    fn rehomes_blocks_when_class_changes() {
        let mut pa = PaLru::new(short_epoch_config());
        let mut f = Feeder::new();
        feed(&mut pa, &mut f, blk(0, 1), SimTime::from_secs(1));
        assert_eq!(pa.stack_sizes(), (1, 0));
        pa.force_priority(DiskId::new(0));
        // A hit re-homes the block into LRU1.
        pa.on_access(Some(f.slot_of(blk(0, 1))), blk(0, 1), SimTime::from_secs(2));
        assert_eq!(pa.stack_sizes(), (0, 1));
    }

    #[test]
    fn empty_interval_histogram_counts_as_long_intervals() {
        // One access per epoch: the disk never records an interval but has
        // zero cold fraction after the bloom warms up — priority.
        let mut pa = PaLru::new(short_epoch_config());
        let mut f = Feeder::new();
        for e in 0..4u64 {
            let t = SimTime::from_secs(e * 150);
            let b = blk(0, 7);
            let was_resident = f.contains(b);
            feed(&mut pa, &mut f, b, t);
            if !was_resident {
                let slot = f.slot_of(b);
                pa.stacks.remove(slot);
            }
            let _ = f.release(b);
        }
        assert!(pa.is_priority(DiskId::new(0)));
    }

    #[test]
    fn falls_back_to_lru1_when_lru0_empty() {
        let mut pa = PaLru::new(short_epoch_config());
        pa.force_priority(DiskId::new(0));
        let mut f = Feeder::new();
        feed(&mut pa, &mut f, blk(0, 1), SimTime::from_secs(1));
        feed(&mut pa, &mut f, blk(0, 2), SimTime::from_secs(2));
        assert_eq!(f.evict(&mut pa), blk(0, 1), "LRU order within LRU1");
    }

    #[test]
    fn epoch_counter_skips_silent_stretches() {
        let mut pa = PaLru::new(short_epoch_config());
        let mut f = Feeder::new();
        feed(&mut pa, &mut f, blk(0, 1), SimTime::from_secs(1));
        // Jump far ahead: exactly one reclassification happens, and the
        // next epoch boundary lands beyond the new time.
        feed(&mut pa, &mut f, blk(0, 2), SimTime::from_secs(100_000));
        assert_eq!(pa.epochs_completed(), 1);
    }

    #[test]
    #[should_panic(expected = "no block")]
    fn evict_on_empty_panics() {
        PaLru::new(PaLruConfig::default()).evict();
    }
}
