//! Cache replacement policies.
//!
//! All policies — on-line and off-line — implement [`ReplacementPolicy`].
//! The cache drives a policy with a strict protocol:
//!
//! 1. [`on_access`](ReplacementPolicy::on_access) for **every** access, in
//!    trace order, flagged hit or miss. Off-line policies count these
//!    calls to track their position in the precomputed trace.
//! 2. On a miss with a full cache, [`evict`](ReplacementPolicy::evict)
//!    once; the policy returns (and forgets) a currently-resident victim.
//! 3. On every miss, [`on_insert`](ReplacementPolicy::on_insert) for the
//!    newly-resident block.

mod arc;
mod belady;
mod classifier;
mod fifo;
mod lirs;
mod lru;
mod mq;
mod opg;
mod pa;
mod pa_lru;
mod two_q;

pub use arc::ArcPolicy;
pub use belady::{min_misses, Belady};
pub use classifier::DiskClassifier;
pub use fifo::Fifo;
pub use lirs::Lirs;
pub use lru::Lru;
pub use mq::Mq;
pub use opg::{Opg, OpgDpm};
pub use pa::Pa;
pub use pa_lru::{PaLru, PaLruConfig};
pub use two_q::TwoQ;

use pc_units::{BlockId, SimTime};

/// A pluggable cache replacement policy. See the [module
/// documentation](self) for the driving protocol.
pub trait ReplacementPolicy {
    /// A short human-readable name, e.g. `"lru"` or `"opg(eps=0)"`.
    fn name(&self) -> String;

    /// Observes one cache access (hit or miss), in trace order.
    fn on_access(&mut self, block: BlockId, time: SimTime, hit: bool);

    /// Chooses a victim among resident blocks and removes it from the
    /// policy's bookkeeping. Called only when an insertion needs space.
    ///
    /// # Panics
    ///
    /// Implementations panic if no block is resident.
    fn evict(&mut self) -> BlockId;

    /// Registers the block just installed by the most recent miss.
    fn on_insert(&mut self, block: BlockId, time: SimTime);

    /// Registers a block installed by *prefetching* rather than by a
    /// client access. Defaults to [`on_insert`](Self::on_insert), which is
    /// correct for on-line policies; off-line policies override this to
    /// reject prefetching (their future-knowledge cursor is indexed by
    /// client accesses only).
    ///
    /// # Panics
    ///
    /// Off-line implementations ([`Belady`], [`Opg`]) panic.
    fn on_prefetch_insert(&mut self, block: BlockId, time: SimTime) {
        self.on_insert(block, time);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for policy tests.

    use pc_trace::{IoOp, Record, Trace};
    use pc_units::{BlockId, BlockNo, DiskId, SimTime};

    use crate::{BlockCache, ReplacementPolicy, WritePolicy};

    /// Builds a block id.
    pub fn blk(disk: u32, no: u64) -> BlockId {
        BlockId::new(DiskId::new(disk), BlockNo::new(no))
    }

    /// Builds a read-only trace on one disk from block numbers, one access
    /// per second.
    pub fn seq_trace(blocks: &[u64]) -> Trace {
        let mut t = Trace::new(1);
        for (i, &b) in blocks.iter().enumerate() {
            t.push(Record::new(
                SimTime::from_secs(i as u64),
                blk(0, b),
                IoOp::Read,
            ));
        }
        t
    }

    /// Runs a trace through a cache with the given policy, returning the
    /// number of misses.
    pub fn count_misses(trace: &Trace, capacity: usize, policy: Box<dyn ReplacementPolicy>) -> u64 {
        let mut cache = BlockCache::new(capacity, policy, WritePolicy::WriteBack);
        let mut effects = Vec::new();
        let mut misses = 0;
        for r in trace {
            if !cache.access(r, |_| false, &mut effects).hit {
                misses += 1;
            }
        }
        misses
    }
}
