//! Cache replacement policies.
//!
//! All policies — on-line and off-line — implement [`ReplacementPolicy`].
//! The cache drives a policy with a strict protocol, addressing resident
//! blocks by the dense [`Slot`]s its [`BlockTable`](crate::BlockTable)
//! interned them at:
//!
//! 1. [`on_access`](ReplacementPolicy::on_access) for **every** access, in
//!    trace order; `slot` is `Some` exactly on a hit. Off-line policies
//!    count these calls to track their position in the precomputed trace.
//! 2. On a miss with a full cache, [`evict`](ReplacementPolicy::evict)
//!    once; the policy returns (and forgets) the slot of a
//!    currently-resident victim. The cache resolves it to a block,
//!    releases it, and hands the recycled slot to the next insertion.
//! 3. On every miss, [`on_insert`](ReplacementPolicy::on_insert) with the
//!    slot the newly-resident block was interned at.
//!
//! Policies therefore never re-hash a `BlockId` on the hot path: recency
//! bookkeeping is slot-indexed (see [`IndexList`]), and the `block` is
//! passed alongside only for the structures that genuinely need the
//! address (ghost directories, per-disk classification, off-line future
//! knowledge).

mod arc;
mod belady;
mod classifier;
mod fifo;
mod lirs;
mod list;
mod lru;
mod meta;
mod mq;
mod opg;
mod pa;
mod pa_lru;
mod two_q;

pub use arc::ArcPolicy;
pub use belady::{min_misses, Belady};
pub use classifier::DiskClassifier;
pub use fifo::Fifo;
pub use lirs::Lirs;
pub use list::{IndexList, PairedList};
pub use lru::Lru;
pub use meta::{MetaConfig, MetaPolicy};
pub use mq::Mq;
pub use opg::{Opg, OpgDpm};
pub use pa::Pa;
pub use pa_lru::{PaLru, PaLruConfig};
pub use two_q::TwoQ;

use pc_units::{BlockId, SimTime};

use crate::table::Slot;

/// A pluggable cache replacement policy. See the [module
/// documentation](self) for the driving protocol.
///
/// Policies are `Send` so a [`BlockCache`](crate::BlockCache) can be
/// owned by a shard thread of an online serving layer; every policy here
/// is plain owned data, so the bound costs nothing.
pub trait ReplacementPolicy: Send {
    /// A short human-readable name, e.g. `"lru"` or `"opg(eps=0)"`.
    fn name(&self) -> String;

    /// Observes one cache access, in trace order. `slot` is the block's
    /// cache slot on a hit and `None` on a miss (the block has no slot
    /// yet — [`on_insert`](Self::on_insert) will deliver it).
    fn on_access(&mut self, slot: Option<Slot>, block: BlockId, time: SimTime);

    /// Chooses a victim among resident slots and removes it from the
    /// policy's bookkeeping. Called only when an insertion needs space.
    ///
    /// # Panics
    ///
    /// Implementations panic if no block is resident.
    fn evict(&mut self) -> Slot;

    /// Registers the block just installed by the most recent miss at
    /// `slot`.
    fn on_insert(&mut self, slot: Slot, block: BlockId, time: SimTime);

    /// Registers a block installed by *prefetching* rather than by a
    /// client access. Defaults to [`on_insert`](Self::on_insert), which is
    /// correct for on-line policies; off-line policies override this to
    /// reject prefetching (their future-knowledge cursor is indexed by
    /// client accesses only).
    ///
    /// # Panics
    ///
    /// Off-line implementations ([`Belady`], [`Opg`]) panic.
    fn on_prefetch_insert(&mut self, slot: Slot, block: BlockId, time: SimTime) {
        self.on_insert(slot, block, time);
    }

    /// Selection gauges, for policies that adaptively choose among
    /// sub-policies ([`MetaPolicy`]). Fixed policies return `None` —
    /// the default — so hosts can surface meta gauges through a
    /// `Box<dyn ReplacementPolicy>` without downcasting.
    fn meta_stats(&self) -> Option<MetaStats> {
        None
    }
}

/// A snapshot of an adaptive policy's selection state — see
/// [`ReplacementPolicy::meta_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaStats {
    /// Canonical name of the live sub-policy (e.g. `"pa-lru"`).
    pub active: String,
    /// Champion switches since construction.
    pub switches: u64,
    /// Completed selection epochs.
    pub epochs: u64,
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for policy tests.

    use pc_trace::{IoOp, Record, Trace};
    use pc_units::{BlockId, BlockNo, DiskId, SimTime};

    use crate::table::{BlockTable, Slot};
    use crate::{BlockCache, ReplacementPolicy, WritePolicy};

    /// Builds a block id.
    pub fn blk(disk: u32, no: u64) -> BlockId {
        BlockId::new(DiskId::new(disk), BlockNo::new(no))
    }

    /// Builds a read-only trace on one disk from block numbers, one access
    /// per second.
    pub fn seq_trace(blocks: &[u64]) -> Trace {
        let mut t = Trace::new(1);
        for (i, &b) in blocks.iter().enumerate() {
            t.push(Record::new(
                SimTime::from_secs(i as u64),
                blk(0, b),
                IoOp::Read,
            ));
        }
        t
    }

    /// Runs a trace through a cache with the given policy, returning the
    /// number of misses.
    pub fn count_misses(trace: &Trace, capacity: usize, policy: Box<dyn ReplacementPolicy>) -> u64 {
        let mut cache = BlockCache::new(capacity, policy, WritePolicy::WriteBack);
        let mut effects = Vec::new();
        let mut misses = 0;
        for r in trace {
            if !cache.access(r, |_| false, &mut effects).hit {
                misses += 1;
            }
        }
        misses
    }

    /// Drives a bare policy through the slot protocol the way the cache
    /// would, managing the [`BlockTable`] so tests can speak in block
    /// ids.
    #[derive(Debug, Default)]
    pub struct Feeder {
        table: BlockTable,
    }

    impl Feeder {
        pub fn new() -> Self {
            Feeder::default()
        }

        /// The slot a resident block occupies.
        pub fn slot_of(&self, block: BlockId) -> Slot {
            self.table.lookup(block).expect("block is resident")
        }

        /// Whether the feeder considers `block` resident.
        pub fn contains(&self, block: BlockId) -> bool {
            self.table.lookup(block).is_some()
        }

        /// One access against a notionally unbounded cache: on_access,
        /// plus intern + on_insert on a miss. Returns whether it hit.
        pub fn access(
            &mut self,
            p: &mut dyn ReplacementPolicy,
            block: BlockId,
            t: SimTime,
        ) -> bool {
            let slot = self.table.lookup(block);
            let hit = slot.is_some();
            p.on_access(slot, block, t);
            if !hit {
                let slot = self.table.intern(block);
                p.on_insert(slot, block, t);
            }
            hit
        }

        /// One access against a cache bounded at `capacity`, evicting
        /// first when full (the cache's exact driving order). Returns
        /// `(hit, evicted)`.
        pub fn access_bounded(
            &mut self,
            p: &mut dyn ReplacementPolicy,
            capacity: usize,
            block: BlockId,
            t: SimTime,
        ) -> (bool, Option<BlockId>) {
            let slot = self.table.lookup(block);
            let hit = slot.is_some();
            p.on_access(slot, block, t);
            let mut evicted = None;
            if !hit {
                if self.table.len() >= capacity {
                    evicted = Some(self.evict(p));
                }
                let slot = self.table.intern(block);
                p.on_insert(slot, block, t);
            }
            (hit, evicted)
        }

        /// Forgets a resident block *without* consulting the policy.
        /// Tests that force future misses must first unlink the slot from
        /// the policy's own structures, or the recycled slot will collide.
        pub fn release(&mut self, block: BlockId) -> bool {
            match self.table.lookup(block) {
                Some(slot) => {
                    self.table.release(slot);
                    true
                }
                None => false,
            }
        }

        /// Asks the policy for a victim and releases its slot, returning
        /// the evicted block.
        pub fn evict(&mut self, p: &mut dyn ReplacementPolicy) -> BlockId {
            let slot = p.evict();
            let block = self.table.block_of(slot);
            self.table.release(slot);
            block
        }
    }
}
