//! First-in-first-out replacement (a simple non-recency baseline).

use pc_units::{BlockId, SimTime};

use crate::policy::{IndexList, ReplacementPolicy};
use crate::table::Slot;

/// FIFO: evicts the block resident the longest, regardless of use.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{Fifo, ReplacementPolicy};
/// use pc_cache::Slot;
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
/// let mut fifo = Fifo::new();
/// fifo.on_insert(Slot::new(0), blk(1), SimTime::ZERO);
/// fifo.on_insert(Slot::new(1), blk(2), SimTime::ZERO);
/// fifo.on_access(Some(Slot::new(0)), blk(1), SimTime::from_secs(1)); // hits don't reorder
/// assert_eq!(fifo.evict(), Slot::new(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    queue: IndexList,
}

impl Fifo {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Fifo::default()
    }
}

impl ReplacementPolicy for Fifo {
    fn name(&self) -> String {
        "fifo".to_owned()
    }

    fn on_access(&mut self, _slot: Option<Slot>, _block: BlockId, _time: SimTime) {}

    fn on_insert(&mut self, slot: Slot, _block: BlockId, _time: SimTime) {
        self.queue.push_back(slot);
    }

    fn evict(&mut self) -> Slot {
        self.queue.pop_front().expect("no block to evict")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses, seq_trace, Feeder};

    #[test]
    fn insertion_order_drives_eviction() {
        let mut f = Fifo::new();
        let mut feeder = Feeder::new();
        for n in 1..=3u64 {
            feeder.access(&mut f, blk(0, n), SimTime::ZERO);
        }
        assert_eq!(feeder.evict(&mut f).block().number(), 1);
        assert_eq!(feeder.evict(&mut f).block().number(), 2);
    }

    #[test]
    fn fifo_and_lru_agree_on_scan() {
        let t = seq_trace(&[1, 2, 3, 4, 1, 2, 3, 4]);
        assert_eq!(count_misses(&t, 3, Box::new(Fifo::new())), 8);
    }

    #[test]
    #[should_panic(expected = "no block")]
    fn evict_on_empty_panics() {
        Fifo::new().evict();
    }
}
