//! First-in-first-out replacement (a simple non-recency baseline).

use std::collections::VecDeque;

use pc_units::{BlockId, SimTime};

use crate::policy::ReplacementPolicy;

/// FIFO: evicts the block resident the longest, regardless of use.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{Fifo, ReplacementPolicy};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
/// let mut fifo = Fifo::new();
/// fifo.on_insert(blk(1), SimTime::ZERO);
/// fifo.on_insert(blk(2), SimTime::ZERO);
/// fifo.on_access(blk(1), SimTime::from_secs(1), true); // hits don't reorder
/// assert_eq!(fifo.evict(), blk(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    queue: VecDeque<BlockId>,
}

impl Fifo {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Fifo::default()
    }
}

impl ReplacementPolicy for Fifo {
    fn name(&self) -> String {
        "fifo".to_owned()
    }

    fn on_access(&mut self, _block: BlockId, _time: SimTime, _hit: bool) {}

    fn on_insert(&mut self, block: BlockId, _time: SimTime) {
        self.queue.push_back(block);
    }

    fn evict(&mut self) -> BlockId {
        self.queue.pop_front().expect("no block to evict")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{count_misses, seq_trace};

    #[test]
    fn insertion_order_drives_eviction() {
        let mut f = Fifo::new();
        for n in 1..=3u64 {
            f.on_insert(
                BlockId::new(pc_units::DiskId::new(0), pc_units::BlockNo::new(n)),
                SimTime::ZERO,
            );
        }
        assert_eq!(f.evict().block().number(), 1);
        assert_eq!(f.evict().block().number(), 2);
    }

    #[test]
    fn fifo_and_lru_agree_on_scan() {
        let t = seq_trace(&[1, 2, 3, 4, 1, 2, 3, 4]);
        assert_eq!(count_misses(&t, 3, Box::new(Fifo::new())), 8);
    }

    #[test]
    #[should_panic(expected = "no block")]
    fn evict_on_empty_panics() {
        Fifo::new().evict();
    }
}
