//! LIRS — Low Inter-reference Recency Set replacement (Jiang & Zhang,
//! SIGMETRICS'02).
//!
//! Another storage-cache policy the paper names as PA-wrappable (§4).
//! LIRS ranks blocks by *inter-reference recency* (IRR — the recency of
//! the previous access) rather than plain recency: blocks with low IRR
//! ("LIR") own almost the whole cache; the rest ("HIR") pass through a
//! small probationary region and are evicted first, so one-shot scans
//! cannot flush the hot set.
//!
//! Implementation: the classic two-structure form — a recency stack `S`
//! holding LIR blocks plus (resident and non-resident) HIR blocks, and a
//! FIFO queue `Q` of resident HIR blocks. The bottom of `S` is always
//! LIR (pruning); a HIR block re-accessed while still in `S` has low IRR
//! and is promoted to LIR, demoting the bottom LIR block. `S` is bounded
//! at a small multiple of the cache size by discarding its oldest
//! non-resident entries.

use std::collections::HashMap;

use pc_units::{BlockId, SimTime};

use crate::policy::pa_lru::Stack;
use crate::policy::ReplacementPolicy;

/// A block's standing in LIRS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Low inter-reference recency: owns the main cache region.
    Lir,
    /// High IRR, resident in the probationary region (in `Q`).
    HirResident,
    /// High IRR, evicted but still remembered in `S` (ghost).
    HirGhost,
}

/// The LIRS replacement policy, sized for a specific cache capacity.
///
/// The configured capacity **must** equal the hosting
/// [`BlockCache`](crate::BlockCache)'s capacity.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::Lirs;
/// use pc_cache::{BlockCache, WritePolicy};
///
/// let cache = BlockCache::new(256, Box::new(Lirs::new(256)), WritePolicy::WriteBack);
/// assert_eq!(cache.policy_name(), "lirs");
/// ```
#[derive(Debug)]
pub struct Lirs {
    /// Target LIR-set size (cache minus the HIR resident region).
    lir_capacity: usize,
    /// Bound on `S` (ghost memory), in entries.
    stack_bound: usize,
    /// The recency stack.
    s: Stack,
    /// Resident HIR blocks, FIFO.
    q: Stack,
    status: HashMap<BlockId, Status>,
    lir_count: usize,
    next_seq: u64,
}

impl Lirs {
    /// Creates LIRS for a cache of `capacity` blocks, with the paper's
    /// ~1% HIR resident region (at least one block) and a ghost stack
    /// bounded at 3× the capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LIRS needs a positive capacity");
        let hir_region = (capacity / 100).max(1);
        Lirs {
            lir_capacity: capacity.saturating_sub(hir_region),
            stack_bound: capacity.saturating_mul(3).max(8),
            s: Stack::default(),
            q: Stack::default(),
            status: HashMap::new(),
            lir_count: 0,
            next_seq: 0,
        }
    }

    /// Sizes of (LIR set, resident HIR queue, stack `S`) — diagnostic.
    #[must_use]
    pub fn sizes(&self) -> (usize, usize, usize) {
        (self.lir_count, self.q.len(), self.s.len())
    }

    fn seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Stack pruning: pop non-LIR entries off the bottom of `S` so its
    /// bottom is always LIR. Popped ghosts are forgotten; popped resident
    /// HIR blocks stay in `Q` (they just lose their `S` recency).
    fn prune(&mut self) {
        while let Some(bottom) = self.s.peek_bottom() {
            match self.status.get(&bottom) {
                Some(Status::Lir) => break,
                Some(Status::HirResident) => {
                    self.s.remove(bottom);
                }
                Some(Status::HirGhost) => {
                    self.s.remove(bottom);
                    self.status.remove(&bottom);
                }
                None => {
                    self.s.remove(bottom);
                }
            }
        }
    }

    /// Demotes the bottom LIR block of `S` into the HIR resident queue.
    fn demote_bottom_lir(&mut self) {
        if let Some(bottom) = self.s.peek_bottom() {
            if self.status.get(&bottom) == Some(&Status::Lir) {
                self.s.remove(bottom);
                self.status.insert(bottom, Status::HirResident);
                self.lir_count -= 1;
                let seq = self.seq();
                self.q.touch(bottom, seq);
                self.prune();
            }
        }
    }

    /// Bounds the ghost memory: drop the oldest non-resident entries of
    /// `S` once it exceeds `stack_bound`.
    fn bound_stack(&mut self) {
        while self.s.len() > self.stack_bound {
            let Some(ghost) = self
                .s
                .iter_bottom_up()
                .find(|b| self.status.get(b) == Some(&Status::HirGhost))
            else {
                break;
            };
            self.s.remove(ghost);
            self.status.remove(&ghost);
        }
    }

    /// Moves `block` to the top of `S` and, if it was LIR at the bottom,
    /// prunes.
    fn refresh(&mut self, block: BlockId) {
        let seq = self.seq();
        self.s.touch(block, seq);
        self.prune();
    }
}

impl ReplacementPolicy for Lirs {
    fn name(&self) -> String {
        "lirs".to_owned()
    }

    fn on_access(&mut self, block: BlockId, _time: SimTime, hit: bool) {
        if !hit {
            return; // handled at on_insert
        }
        match self.status.get(&block).copied() {
            Some(Status::Lir) => self.refresh(block),
            Some(Status::HirResident) => {
                if self.s.contains(block) {
                    // Low IRR: promote to LIR, demote a LIR block.
                    self.status.insert(block, Status::Lir);
                    self.lir_count += 1;
                    self.q.remove(block);
                    self.refresh(block);
                    if self.lir_count > self.lir_capacity {
                        self.demote_bottom_lir();
                    }
                } else {
                    // Still high IRR: refresh both recencies.
                    self.refresh(block);
                    let seq = self.seq();
                    self.q.touch(block, seq);
                }
            }
            _ => unreachable!("hit on a non-resident block"),
        }
    }

    fn on_insert(&mut self, block: BlockId, _time: SimTime) {
        if self.lir_count < self.lir_capacity && !self.s.contains(block) {
            // Warm-up: the LIR set has room; new blocks join it directly.
            self.status.insert(block, Status::Lir);
            self.lir_count += 1;
            self.refresh(block);
            return;
        }
        if self.status.get(&block) == Some(&Status::HirGhost) {
            // Re-reference within the ghost window: low IRR — straight to
            // LIR, demoting the coldest LIR block.
            self.status.insert(block, Status::Lir);
            self.lir_count += 1;
            self.refresh(block);
            if self.lir_count > self.lir_capacity {
                self.demote_bottom_lir();
            }
        } else {
            // Fresh (or long-forgotten) block: probationary HIR.
            self.status.insert(block, Status::HirResident);
            self.refresh(block);
            let seq = self.seq();
            self.q.touch(block, seq);
        }
        self.bound_stack();
    }

    fn evict(&mut self) -> BlockId {
        // Resident HIR blocks go first; if none exist (warm-up with a
        // tiny cache), sacrifice the coldest LIR block.
        if let Some(victim) = self.q.pop_bottom() {
            if self.s.contains(victim) {
                self.status.insert(victim, Status::HirGhost);
            } else {
                self.status.remove(&victim);
            }
            return victim;
        }
        let victim = self.s.peek_bottom().expect("no block to evict");
        self.s.remove(victim);
        self.status.remove(&victim);
        self.lir_count -= 1;
        self.prune();
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{count_misses, seq_trace};
    use crate::policy::Lru;

    #[test]
    fn behaves_like_a_cache() {
        let t = seq_trace(&[1, 2, 3, 1, 2, 3, 4, 5, 1, 2]);
        let misses = count_misses(&t, 3, Box::new(Lirs::new(3)));
        assert!((5..=10).contains(&misses), "misses {misses}");
    }

    #[test]
    fn loop_pattern_beats_lru() {
        // LIRS' signature win: a loop slightly larger than the cache.
        // LRU misses every access; LIRS pins most of the loop as LIR.
        let mut pattern = Vec::new();
        for _ in 0..25 {
            for b in 0..12u64 {
                pattern.push(b);
            }
        }
        let t = seq_trace(&pattern);
        let lirs = count_misses(&t, 10, Box::new(Lirs::new(10)));
        let lru = count_misses(&t, 10, Box::new(Lru::new()));
        assert_eq!(lru, 300, "LRU thrashes the whole loop");
        assert!(lirs < lru / 2, "lirs {lirs} vs lru {lru}");
    }

    #[test]
    fn scan_does_not_flush_the_hot_set() {
        // Hot pair accessed between one-shot scan blocks.
        let mut pattern = Vec::new();
        for i in 0..60u64 {
            pattern.push(1);
            pattern.push(2);
            pattern.push(1_000 + i);
        }
        let t = seq_trace(&pattern);
        let lirs = count_misses(&t, 4, Box::new(Lirs::new(4)));
        // 2 cold + 60 scan blocks: the hot pair never misses again.
        assert_eq!(lirs, 62, "hot set must stay resident");
    }

    #[test]
    fn stack_stays_bounded() {
        let mut pattern = Vec::new();
        for i in 0..5_000u64 {
            pattern.push(i); // endless cold scan
        }
        let t = seq_trace(&pattern);
        let mut cache =
            crate::BlockCache::new(8, Box::new(Lirs::new(8)), crate::WritePolicy::WriteBack);
        for r in &t {
            cache.access_alloc(r, |_| false);
        }
        assert!(cache.len() <= 8);
    }

    #[test]
    fn eviction_targets_resident_hir_first() {
        let mut lirs = Lirs::new(4); // lir_capacity 3, hir region 1
        let blk = crate::policy::testutil::blk;
        for n in 1..=4u64 {
            lirs.on_access(blk(0, n), SimTime::ZERO, false);
            lirs.on_insert(blk(0, n), SimTime::ZERO);
        }
        // Blocks 1..3 fill the LIR set; block 4 is probationary HIR.
        let (lir, hir, _) = lirs.sizes();
        assert_eq!((lir, hir), (3, 1));
        assert_eq!(lirs.evict(), blk(0, 4), "HIR evicted before any LIR");
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn rejects_zero_capacity() {
        let _ = Lirs::new(0);
    }
}
