//! LIRS — Low Inter-reference Recency Set replacement (Jiang & Zhang,
//! SIGMETRICS'02).
//!
//! Another storage-cache policy the paper names as PA-wrappable (§4).
//! LIRS ranks blocks by *inter-reference recency* (IRR — the recency of
//! the previous access) rather than plain recency: blocks with low IRR
//! ("LIR") own almost the whole cache; the rest ("HIR") pass through a
//! small probationary region and are evicted first, so one-shot scans
//! cannot flush the hot set.
//!
//! Implementation: the classic two-structure form — a recency stack `S`
//! holding LIR blocks plus (resident and non-resident) HIR blocks, and a
//! FIFO queue `Q` of resident HIR blocks. The bottom of `S` is always
//! LIR (pruning); a HIR block re-accessed while still in `S` has low IRR
//! and is promoted to LIR, demoting the bottom LIR block. `S` is bounded
//! at a small multiple of the cache size by discarding its oldest
//! non-resident entries.
//!
//! Because `S` must remember *evicted* blocks, LIRS keeps a private
//! [`BlockTable`] over everything it tracks ("directory slots"); `S` and
//! `Q` are intrusive [`IndexList`]s over those, and two flat vectors map
//! directory slots to and from the hosting cache's slots.

use pc_units::{BlockId, SimTime};

use crate::policy::{IndexList, ReplacementPolicy};
use crate::table::{BlockTable, Slot};

/// "No cache slot" marker for non-resident directory entries.
const NO_SLOT: u32 = u32::MAX;

/// A block's standing in LIRS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Status {
    /// Low inter-reference recency: owns the main cache region.
    #[default]
    Lir,
    /// High IRR, resident in the probationary region (in `Q`).
    HirResident,
    /// High IRR, evicted but still remembered in `S` (ghost).
    HirGhost,
}

/// The LIRS replacement policy, sized for a specific cache capacity.
///
/// The configured capacity **must** equal the hosting
/// [`BlockCache`](crate::BlockCache)'s capacity.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::Lirs;
/// use pc_cache::{BlockCache, WritePolicy};
///
/// let cache = BlockCache::new(256, Box::new(Lirs::new(256)), WritePolicy::WriteBack);
/// assert_eq!(cache.policy_name(), "lirs");
/// ```
#[derive(Debug)]
pub struct Lirs {
    /// Target LIR-set size (cache minus the HIR resident region).
    lir_capacity: usize,
    /// Bound on `S` (ghost memory), in entries.
    stack_bound: usize,
    /// Directory of every tracked block, resident or ghost.
    dir: BlockTable,
    /// Status per directory slot.
    status: Vec<Status>,
    /// Cache slot per directory slot (`NO_SLOT` for ghosts).
    cache_slot: Vec<u32>,
    /// Directory slot per cache slot.
    of_cache: Vec<u32>,
    /// The recency stack (directory slots, front = most recent).
    s: IndexList,
    /// Resident HIR blocks, FIFO (directory slots, front = newest).
    q: IndexList,
    lir_count: usize,
}

impl Lirs {
    /// Creates LIRS for a cache of `capacity` blocks, with the paper's
    /// ~1% HIR resident region (at least one block) and a ghost stack
    /// bounded at 3× the capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LIRS needs a positive capacity");
        let hir_region = (capacity / 100).max(1);
        Lirs {
            lir_capacity: capacity.saturating_sub(hir_region),
            stack_bound: capacity.saturating_mul(3).max(8),
            dir: BlockTable::new(),
            status: Vec::new(),
            cache_slot: Vec::new(),
            of_cache: Vec::new(),
            s: IndexList::new(),
            q: IndexList::new(),
            lir_count: 0,
        }
    }

    /// Sizes of (LIR set, resident HIR queue, stack `S`) — diagnostic.
    #[must_use]
    pub fn sizes(&self) -> (usize, usize, usize) {
        (self.lir_count, self.q.len(), self.s.len())
    }

    /// Grows the per-directory-slot vectors to cover `ds`.
    fn ensure(&mut self, ds: Slot) {
        if ds.index() >= self.status.len() {
            self.status.resize(ds.index() + 1, Status::default());
            self.cache_slot.resize(ds.index() + 1, NO_SLOT);
        }
    }

    /// The directory slot of the resident block at cache slot `slot`.
    fn dir_of(&self, slot: Slot) -> Slot {
        Slot::new(self.of_cache[slot.index()])
    }

    /// Stack pruning: pop non-LIR entries off the bottom of `S` so its
    /// bottom is always LIR. Popped ghosts are forgotten; popped resident
    /// HIR blocks stay in `Q` (they just lose their `S` recency).
    fn prune(&mut self) {
        while let Some(bottom) = self.s.back() {
            match self.status[bottom.index()] {
                Status::Lir => break,
                Status::HirResident => {
                    self.s.remove(bottom);
                }
                Status::HirGhost => {
                    self.s.remove(bottom);
                    self.dir.release(bottom);
                }
            }
        }
    }

    /// Demotes the bottom LIR block of `S` into the HIR resident queue.
    fn demote_bottom_lir(&mut self) {
        if let Some(bottom) = self.s.back() {
            if self.status[bottom.index()] == Status::Lir {
                self.s.remove(bottom);
                self.status[bottom.index()] = Status::HirResident;
                self.lir_count -= 1;
                self.q.push_front(bottom);
                self.prune();
            }
        }
    }

    /// Bounds the ghost memory: drop the oldest non-resident entries of
    /// `S` once it exceeds `stack_bound`.
    fn bound_stack(&mut self) {
        while self.s.len() > self.stack_bound {
            let Some(ghost) = self
                .s
                .iter_from_back()
                .find(|ds| self.status[ds.index()] == Status::HirGhost)
            else {
                break;
            };
            self.s.remove(ghost);
            self.dir.release(ghost);
        }
    }

    /// Moves `ds` to the top of `S` (entering it if absent) and prunes.
    fn refresh(&mut self, ds: Slot) {
        if self.s.contains(ds) {
            self.s.move_to_front(ds);
        } else {
            self.s.push_front(ds);
        }
        self.prune();
    }
}

impl ReplacementPolicy for Lirs {
    fn name(&self) -> String {
        "lirs".to_owned()
    }

    fn on_access(&mut self, slot: Option<Slot>, _block: BlockId, _time: SimTime) {
        let Some(slot) = slot else {
            return; // misses are handled at on_insert
        };
        let ds = self.dir_of(slot);
        match self.status[ds.index()] {
            Status::Lir => self.refresh(ds),
            Status::HirResident => {
                if self.s.contains(ds) {
                    // Low IRR: promote to LIR, demote a LIR block.
                    self.status[ds.index()] = Status::Lir;
                    self.lir_count += 1;
                    self.q.remove(ds);
                    self.refresh(ds);
                    if self.lir_count > self.lir_capacity {
                        self.demote_bottom_lir();
                    }
                } else {
                    // Still high IRR: refresh both recencies.
                    self.refresh(ds);
                    self.q.move_to_front(ds);
                }
            }
            Status::HirGhost => unreachable!("hit on a non-resident block"),
        }
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, _time: SimTime) {
        // A directory entry can only pre-exist as a ghost: resident
        // statuses imply the block could not have missed.
        let (ds, was_ghost) = match self.dir.lookup(block) {
            Some(ds) => (ds, true),
            None => {
                let ds = self.dir.intern(block);
                self.ensure(ds);
                (ds, false)
            }
        };
        self.cache_slot[ds.index()] = slot.index() as u32;
        if slot.index() >= self.of_cache.len() {
            self.of_cache.resize(slot.index() + 1, NO_SLOT);
        }
        self.of_cache[slot.index()] = ds.index() as u32;

        if self.lir_count < self.lir_capacity && !self.s.contains(ds) {
            // Warm-up: the LIR set has room; new blocks join it directly.
            self.status[ds.index()] = Status::Lir;
            self.lir_count += 1;
            self.refresh(ds);
            return;
        }
        if was_ghost {
            // Re-reference within the ghost window: low IRR — straight to
            // LIR, demoting the coldest LIR block.
            self.status[ds.index()] = Status::Lir;
            self.lir_count += 1;
            self.refresh(ds);
            if self.lir_count > self.lir_capacity {
                self.demote_bottom_lir();
            }
        } else {
            // Fresh (or long-forgotten) block: probationary HIR.
            self.status[ds.index()] = Status::HirResident;
            self.refresh(ds);
            self.q.push_front(ds);
        }
        self.bound_stack();
    }

    fn evict(&mut self) -> Slot {
        // Resident HIR blocks go first; if none exist (warm-up with a
        // tiny cache), sacrifice the coldest LIR block.
        if let Some(ds) = self.q.pop_back() {
            let slot = Slot::new(self.cache_slot[ds.index()]);
            if self.s.contains(ds) {
                self.status[ds.index()] = Status::HirGhost;
                self.cache_slot[ds.index()] = NO_SLOT;
            } else {
                self.dir.release(ds);
            }
            return slot;
        }
        let ds = self.s.back().expect("no block to evict");
        let slot = Slot::new(self.cache_slot[ds.index()]);
        self.s.remove(ds);
        self.dir.release(ds);
        self.lir_count -= 1;
        self.prune();
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses, seq_trace, Feeder};
    use crate::policy::Lru;

    #[test]
    fn behaves_like_a_cache() {
        let t = seq_trace(&[1, 2, 3, 1, 2, 3, 4, 5, 1, 2]);
        let misses = count_misses(&t, 3, Box::new(Lirs::new(3)));
        assert!((5..=10).contains(&misses), "misses {misses}");
    }

    #[test]
    fn loop_pattern_beats_lru() {
        // LIRS' signature win: a loop slightly larger than the cache.
        // LRU misses every access; LIRS pins most of the loop as LIR.
        let mut pattern = Vec::new();
        for _ in 0..25 {
            for b in 0..12u64 {
                pattern.push(b);
            }
        }
        let t = seq_trace(&pattern);
        let lirs = count_misses(&t, 10, Box::new(Lirs::new(10)));
        let lru = count_misses(&t, 10, Box::new(Lru::new()));
        assert_eq!(lru, 300, "LRU thrashes the whole loop");
        assert!(lirs < lru / 2, "lirs {lirs} vs lru {lru}");
    }

    #[test]
    fn scan_does_not_flush_the_hot_set() {
        // Hot pair accessed between one-shot scan blocks.
        let mut pattern = Vec::new();
        for i in 0..60u64 {
            pattern.push(1);
            pattern.push(2);
            pattern.push(1_000 + i);
        }
        let t = seq_trace(&pattern);
        let lirs = count_misses(&t, 4, Box::new(Lirs::new(4)));
        // 2 cold + 60 scan blocks: the hot pair never misses again.
        assert_eq!(lirs, 62, "hot set must stay resident");
    }

    #[test]
    fn stack_stays_bounded() {
        let mut pattern = Vec::new();
        for i in 0..5_000u64 {
            pattern.push(i); // endless cold scan
        }
        let t = seq_trace(&pattern);
        let mut cache =
            crate::BlockCache::new(8, Box::new(Lirs::new(8)), crate::WritePolicy::WriteBack);
        for r in &t {
            cache.access_alloc(r, |_| false);
        }
        assert!(cache.len() <= 8);
    }

    #[test]
    fn eviction_targets_resident_hir_first() {
        let mut lirs = Lirs::new(4); // lir_capacity 3, hir region 1
        let mut f = Feeder::new();
        for n in 1..=4u64 {
            f.access(&mut lirs, blk(0, n), SimTime::ZERO);
        }
        // Blocks 1..3 fill the LIR set; block 4 is probationary HIR.
        let (lir, hir, _) = lirs.sizes();
        assert_eq!((lir, hir), (3, 1));
        assert_eq!(f.evict(&mut lirs), blk(0, 4), "HIR evicted before any LIR");
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn rejects_zero_capacity() {
        let _ = Lirs::new(0);
    }
}
