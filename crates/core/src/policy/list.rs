//! Index-based intrusive doubly-linked lists over [`Slot`]s.
//!
//! The recency structure behind every list-shaped policy (LRU, the
//! PA-LRU stacks, 2Q's queues, MQ's ladder, ARC's four lists, LIRS's
//! stack and queue). Links are stored in parallel `Vec<u32>`s indexed by
//! slot — no pointers, no allocation per operation, no `unsafe` — so
//! touch/insert/remove/evict are all O(1), replacing the former
//! `BTreeMap` sequence-number stacks and their O(log n) rebalancing.
//!
//! Orientation: the **front** is the most-recently-touched end and the
//! **back** the coldest, so an LRU is `push_front` on touch and
//! `pop_back` on eviction, and a FIFO is `push_back` + `pop_front`.

use crate::table::Slot;

/// Link value marking "no neighbour".
const NIL: u32 = u32::MAX;

/// An intrusive doubly-linked list addressed by [`Slot`] index.
///
/// Each list owns its link arrays, so one slot may appear in several
/// lists' arrays but be *linked* into at most one list at a time per
/// list instance; [`contains`](IndexList::contains) is O(1).
///
/// # Examples
///
/// ```
/// use pc_cache::policy::IndexList;
/// use pc_cache::Slot;
///
/// let mut lru = IndexList::new();
/// lru.push_front(Slot::new(0));
/// lru.push_front(Slot::new(1)); // 1 is now the most recent
/// lru.remove(Slot::new(0));
/// lru.push_front(Slot::new(0)); // touch: 0 back to the front
/// assert_eq!(lru.pop_back(), Some(Slot::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct IndexList {
    prev: Vec<u32>,
    next: Vec<u32>,
    linked: Vec<bool>,
    head: u32,
    tail: u32,
    len: usize,
}

impl Default for IndexList {
    fn default() -> Self {
        // Not derivable: an empty list's head/tail must be NIL, not 0.
        IndexList::new()
    }
}

impl IndexList {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        IndexList {
            prev: Vec::new(),
            next: Vec::new(),
            linked: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no slot is linked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `slot` is currently linked into this list.
    #[must_use]
    pub fn contains(&self, slot: Slot) -> bool {
        self.linked.get(slot.index()).copied().unwrap_or(false)
    }

    /// The front (most recent) slot, if any.
    #[must_use]
    pub fn front(&self) -> Option<Slot> {
        (self.head != NIL).then(|| Slot::new(self.head))
    }

    /// The back (coldest) slot, if any.
    #[must_use]
    pub fn back(&self) -> Option<Slot> {
        (self.tail != NIL).then(|| Slot::new(self.tail))
    }

    fn ensure(&mut self, index: usize) {
        if index >= self.linked.len() {
            self.prev.resize(index + 1, NIL);
            self.next.resize(index + 1, NIL);
            self.linked.resize(index + 1, false);
        }
    }

    /// Links `slot` at the front.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `slot` is already linked.
    pub fn push_front(&mut self, slot: Slot) {
        let i = slot.index() as u32;
        self.ensure(slot.index());
        debug_assert!(!self.linked[slot.index()], "slot already linked");
        self.prev[slot.index()] = NIL;
        self.next[slot.index()] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = i;
        } else {
            self.tail = i;
        }
        self.head = i;
        self.linked[slot.index()] = true;
        self.len += 1;
    }

    /// Links `slot` at the back.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `slot` is already linked.
    pub fn push_back(&mut self, slot: Slot) {
        let i = slot.index() as u32;
        self.ensure(slot.index());
        debug_assert!(!self.linked[slot.index()], "slot already linked");
        self.next[slot.index()] = NIL;
        self.prev[slot.index()] = self.tail;
        if self.tail != NIL {
            self.next[self.tail as usize] = i;
        } else {
            self.head = i;
        }
        self.tail = i;
        self.linked[slot.index()] = true;
        self.len += 1;
    }

    /// Unlinks `slot` if linked; returns whether it was.
    pub fn remove(&mut self, slot: Slot) -> bool {
        let i = slot.index();
        if !self.contains(slot) {
            return false;
        }
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.linked[i] = false;
        self.len -= 1;
        true
    }

    /// Unlinks and returns the front slot.
    pub fn pop_front(&mut self) -> Option<Slot> {
        let front = self.front()?;
        self.remove(front);
        Some(front)
    }

    /// Unlinks and returns the back slot.
    pub fn pop_back(&mut self) -> Option<Slot> {
        let back = self.back()?;
        self.remove(back);
        Some(back)
    }

    /// Moves `slot` to the front, linking it if it was not linked — the
    /// LRU "touch".
    pub fn move_to_front(&mut self, slot: Slot) {
        self.remove(slot);
        self.push_front(slot);
    }

    /// Iterates from the back (coldest) towards the front.
    pub fn iter_from_back(&self) -> impl Iterator<Item = Slot> + '_ {
        let mut cursor = self.tail;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let slot = Slot::new(cursor);
            cursor = self.prev[cursor as usize];
            Some(slot)
        })
    }
}

/// Marker for "not linked into either list" in [`PairedList`].
const UNLINKED: u8 = u8::MAX;

/// Two intrusive lists sharing one set of link arrays.
///
/// PA-LRU keeps every resident block in exactly one of two LRU stacks
/// (LRU0 = regular disks, LRU1 = priority disks). With two independent
/// [`IndexList`]s, re-homing a block means speculative removes against
/// both lists' link arrays — four parallel `Vec`s of random-index
/// traffic per access. Sharing `prev`/`next` across the pair makes a
/// removal one splice regardless of which stack holds the slot, with a
/// per-slot membership byte selecting the head/tail pair to patch.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::PairedList;
/// use pc_cache::Slot;
///
/// let mut stacks = PairedList::new();
/// stacks.push_front(Slot::new(0), 0);
/// stacks.push_front(Slot::new(1), 1);
/// stacks.remove(Slot::new(0)); // no need to know which stack held it
/// assert_eq!(stacks.pop_back(1), Some(Slot::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct PairedList {
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Which list (`0` or `1`) each slot is linked into, or [`UNLINKED`].
    member: Vec<u8>,
    head: [u32; 2],
    tail: [u32; 2],
    len: [usize; 2],
}

impl Default for PairedList {
    fn default() -> Self {
        PairedList::new()
    }
}

impl PairedList {
    /// Creates an empty pair of lists.
    #[must_use]
    pub fn new() -> Self {
        PairedList {
            prev: Vec::new(),
            next: Vec::new(),
            member: Vec::new(),
            head: [NIL; 2],
            tail: [NIL; 2],
            len: [0; 2],
        }
    }

    /// Number of slots linked into list `which`.
    ///
    /// # Panics
    ///
    /// Panics if `which > 1`.
    #[must_use]
    pub fn len(&self, which: usize) -> usize {
        self.len[which]
    }

    /// Which list `slot` is linked into, if any.
    #[must_use]
    pub fn list_of(&self, slot: Slot) -> Option<usize> {
        match self.member.get(slot.index()).copied() {
            Some(m) if m != UNLINKED => Some(usize::from(m)),
            _ => None,
        }
    }

    fn ensure(&mut self, index: usize) {
        if index >= self.member.len() {
            self.prev.resize(index + 1, NIL);
            self.next.resize(index + 1, NIL);
            self.member.resize(index + 1, UNLINKED);
        }
    }

    /// Links `slot` at the front of list `which`.
    ///
    /// # Panics
    ///
    /// Panics if `which > 1`, and (in debug builds) if `slot` is already
    /// linked into either list.
    pub fn push_front(&mut self, slot: Slot, which: usize) {
        let i = slot.index() as u32;
        self.ensure(slot.index());
        debug_assert!(self.member[slot.index()] == UNLINKED, "slot already linked");
        self.prev[slot.index()] = NIL;
        self.next[slot.index()] = self.head[which];
        if self.head[which] != NIL {
            self.prev[self.head[which] as usize] = i;
        } else {
            self.tail[which] = i;
        }
        self.head[which] = i;
        self.member[slot.index()] = which as u8;
        self.len[which] += 1;
    }

    /// Unlinks `slot` from whichever list holds it; returns whether it
    /// was linked.
    pub fn remove(&mut self, slot: Slot) -> bool {
        let i = slot.index();
        let Some(which) = self.list_of(slot) else {
            return false;
        };
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head[which] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail[which] = p;
        }
        self.member[i] = UNLINKED;
        self.len[which] -= 1;
        true
    }

    /// Unlinks and returns the back (coldest) slot of list `which`.
    ///
    /// # Panics
    ///
    /// Panics if `which > 1`.
    pub fn pop_back(&mut self, which: usize) -> Option<Slot> {
        let tail = self.tail[which];
        if tail == NIL {
            return None;
        }
        let slot = Slot::new(tail);
        self.remove(slot);
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Slot {
        Slot::new(i)
    }

    #[test]
    fn lru_discipline() {
        let mut l = IndexList::new();
        for i in 0..4 {
            l.push_front(s(i));
        }
        l.move_to_front(s(0)); // refresh the oldest
        let order: Vec<u32> =
            std::iter::from_fn(|| l.pop_back().map(|x| x.index() as u32)).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn fifo_discipline() {
        let mut l = IndexList::new();
        for i in 0..3 {
            l.push_back(s(i));
        }
        assert_eq!(l.pop_front(), Some(s(0)));
        assert_eq!(l.pop_front(), Some(s(1)));
        assert_eq!(l.pop_front(), Some(s(2)));
        assert_eq!(l.pop_front(), None);
    }

    #[test]
    fn remove_from_middle_and_ends() {
        let mut l = IndexList::new();
        for i in 0..5 {
            l.push_back(s(i));
        }
        assert!(l.remove(s(2))); // middle
        assert!(l.remove(s(0))); // head
        assert!(l.remove(s(4))); // tail
        assert!(!l.remove(s(2)), "already unlinked");
        assert_eq!(l.len(), 2);
        assert_eq!(l.front(), Some(s(1)));
        assert_eq!(l.back(), Some(s(3)));
    }

    #[test]
    fn contains_tracks_membership_per_list() {
        let mut a = IndexList::new();
        let mut b = IndexList::new();
        a.push_front(s(7));
        assert!(a.contains(s(7)));
        assert!(!b.contains(s(7)));
        b.push_front(s(7)); // same slot, different list instance
        a.remove(s(7));
        assert!(b.contains(s(7)));
    }

    #[test]
    fn iter_from_back_walks_cold_to_hot() {
        let mut l = IndexList::new();
        for i in [3u32, 1, 4] {
            l.push_front(s(i));
        }
        let order: Vec<usize> = l.iter_from_back().map(Slot::index).collect();
        assert_eq!(order, vec![3, 1, 4]);
    }

    #[test]
    fn singleton_edge_cases() {
        let mut l = IndexList::new();
        l.push_front(s(9));
        assert_eq!(l.front(), l.back());
        assert_eq!(l.pop_back(), Some(s(9)));
        assert!(l.is_empty());
        assert_eq!(l.pop_front(), None);
    }

    #[test]
    fn paired_list_matches_two_index_lists() {
        // Oracle: a PairedList must behave exactly like two independent
        // IndexLists under a randomized push/remove/pop workload.
        let mut paired = PairedList::new();
        let mut oracle = [IndexList::new(), IndexList::new()];
        let mut state = 0x9A17u64;
        let mut rand = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..20_000 {
            let slot = s(rand(64) as u32);
            let which = rand(2) as usize;
            match rand(3) {
                0 => {
                    let linked = paired.list_of(slot).is_some();
                    assert_eq!(linked, oracle[0].contains(slot) || oracle[1].contains(slot));
                    if !linked {
                        paired.push_front(slot, which);
                        oracle[which].push_front(slot);
                    }
                }
                1 => {
                    let removed = paired.remove(slot);
                    let expect = oracle[0].remove(slot) || oracle[1].remove(slot);
                    assert_eq!(removed, expect);
                }
                _ => {
                    assert_eq!(paired.pop_back(which), oracle[which].pop_back());
                }
            }
            assert_eq!(paired.len(0), oracle[0].len());
            assert_eq!(paired.len(1), oracle[1].len());
        }
    }

    #[test]
    fn paired_list_tracks_membership() {
        let mut p = PairedList::new();
        assert_eq!(p.list_of(s(3)), None);
        p.push_front(s(3), 1);
        assert_eq!(p.list_of(s(3)), Some(1));
        assert!(p.remove(s(3)));
        assert_eq!(p.list_of(s(3)), None);
        assert!(!p.remove(s(3)));
        assert_eq!(p.pop_back(0), None);
        assert_eq!(p.pop_back(1), None);
    }
}
