//! ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
//!
//! One of the storage-cache policies the paper names as a candidate for
//! the PA treatment (§4). ARC balances a recency list (T1) against a
//! frequency list (T2), steering the split with ghost lists (B1, B2) of
//! recently-evicted block ids: a hit in B1 says "recency deserved more
//! space", a hit in B2 the opposite.

use pc_units::{BlockId, SimTime};

use crate::policy::{IndexList, ReplacementPolicy};
use crate::table::{BlockTable, Slot};

/// Where the pending (missed) block came from, deciding its insertion
/// list and the REPLACE tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    Fresh,
    GhostRecency,
    GhostFrequency,
}

/// The ARC replacement policy, sized for a specific cache capacity.
///
/// The configured capacity **must** equal the hosting
/// [`BlockCache`](crate::BlockCache)'s capacity: ARC sizes its ghost
/// lists and its adaptation against it.
///
/// T1/T2 are intrusive lists over cache slots; B1/B2 share a private
/// ghost [`BlockTable`], so every list operation — including the former
/// O(n) ghost membership probes — is O(1).
///
/// # Examples
///
/// ```
/// use pc_cache::policy::ArcPolicy;
/// use pc_cache::{BlockCache, WritePolicy};
///
/// let cache = BlockCache::new(256, Box::new(ArcPolicy::new(256)), WritePolicy::WriteBack);
/// assert_eq!(cache.policy_name(), "arc");
/// ```
#[derive(Debug)]
pub struct ArcPolicy {
    capacity: usize,
    /// Adaptive target size of T1.
    p: f64,
    /// Resident recency / frequency lists (cache slots, front = MRU).
    t1: IndexList,
    t2: IndexList,
    /// Block ids per cache slot, for ghosting evicted victims.
    blocks: Vec<BlockId>,
    /// Ghost directory shared by B1 and B2 (ghost slots, front = MRU).
    ghosts: BlockTable,
    b1: IndexList,
    b2: IndexList,
    pending: Pending,
    /// Set when the DBL invariant requires the next T1 eviction to be
    /// dropped instead of ghosted (|T1| = c with B1 empty).
    suppress_ghost: bool,
}

impl ArcPolicy {
    /// Creates ARC for a cache of `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ARC needs a positive capacity");
        ArcPolicy {
            capacity,
            p: 0.0,
            t1: IndexList::new(),
            t2: IndexList::new(),
            blocks: Vec::new(),
            ghosts: BlockTable::new(),
            b1: IndexList::new(),
            b2: IndexList::new(),
            pending: Pending::Fresh,
            suppress_ghost: false,
        }
    }

    /// Current adaptation target for T1 (diagnostic).
    #[must_use]
    pub fn recency_target(&self) -> f64 {
        self.p
    }

    /// Sizes of (T1, T2, B1, B2) (diagnostic).
    #[must_use]
    pub fn list_sizes(&self) -> (usize, usize, usize, usize) {
        (self.t1.len(), self.t2.len(), self.b1.len(), self.b2.len())
    }

    /// Drops the oldest ghost of `list`, forgetting its id.
    fn pop_ghost(ghosts: &mut BlockTable, list: &mut IndexList) {
        if let Some(g) = list.pop_back() {
            ghosts.release(g);
        }
    }
}

impl ReplacementPolicy for ArcPolicy {
    fn name(&self) -> String {
        "arc".to_owned()
    }

    fn on_access(&mut self, slot: Option<Slot>, block: BlockId, _time: SimTime) {
        if let Some(slot) = slot {
            // Case I: promote to T2's MRU position.
            self.t1.remove(slot);
            self.t2.remove(slot);
            self.t2.push_front(slot);
            return;
        }
        let c = self.capacity as f64;
        let ghost = self.ghosts.lookup(block);
        if let Some(g) = ghost.filter(|&g| self.b1.contains(g)) {
            // Case II: ghost hit in B1 — recency deserved more room.
            let delta = (self.b2.len() as f64 / self.b1.len() as f64).max(1.0);
            self.p = (self.p + delta).min(c);
            self.b1.remove(g);
            self.ghosts.release(g);
            self.pending = Pending::GhostRecency;
        } else if let Some(g) = ghost {
            // Case III: ghost hit in B2 — frequency deserved more room.
            let delta = (self.b1.len() as f64 / self.b2.len() as f64).max(1.0);
            self.p = (self.p - delta).max(0.0);
            self.b2.remove(g);
            self.ghosts.release(g);
            self.pending = Pending::GhostFrequency;
        } else {
            // Case IV: brand-new block. Maintain the DBL(2c) invariants.
            self.pending = Pending::Fresh;
            self.suppress_ghost = false;
            let l1 = self.t1.len() + self.b1.len();
            if l1 >= self.capacity {
                if !self.b1.is_empty() {
                    Self::pop_ghost(&mut self.ghosts, &mut self.b1);
                } else {
                    // |T1| = c: the coming eviction must drop, not ghost.
                    self.suppress_ghost = true;
                }
            } else if self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len()
                >= 2 * self.capacity
            {
                Self::pop_ghost(&mut self.ghosts, &mut self.b2);
            }
        }
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, _time: SimTime) {
        if slot.index() >= self.blocks.len() {
            self.blocks.resize(slot.index() + 1, BlockId::default());
        }
        self.blocks[slot.index()] = block;
        match self.pending {
            Pending::Fresh => self.t1.push_front(slot),
            Pending::GhostRecency | Pending::GhostFrequency => self.t2.push_front(slot),
        }
        self.pending = Pending::Fresh;
    }

    fn evict(&mut self) -> Slot {
        // REPLACE(x, p): prefer T1 when it exceeds its target (or exactly
        // meets it on a B2 ghost hit).
        let ghost_frequency_hit = self.pending == Pending::GhostFrequency;
        let t1_len = self.t1.len() as f64;
        let from_t1 = !self.t1.is_empty()
            && (t1_len > self.p || (ghost_frequency_hit && (t1_len - self.p).abs() < 0.5));
        if from_t1 || self.t2.is_empty() {
            let v = self.t1.pop_back().expect("no block to evict");
            if self.suppress_ghost {
                self.suppress_ghost = false;
            } else {
                let g = self.ghosts.intern(self.blocks[v.index()]);
                self.b1.push_front(g);
            }
            v
        } else {
            let v = self.t2.pop_back().expect("no block to evict");
            let g = self.ghosts.intern(self.blocks[v.index()]);
            self.b2.push_front(g);
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses, seq_trace, Feeder};
    use crate::policy::Lru;

    #[test]
    fn behaves_like_a_cache() {
        let t = seq_trace(&[1, 2, 3, 1, 2, 3, 4, 5, 1, 2]);
        let misses = count_misses(&t, 3, Box::new(ArcPolicy::new(3)));
        assert!((5..=10).contains(&misses), "misses {misses}");
    }

    #[test]
    fn frequency_hits_promote_to_t2() {
        let mut arc = ArcPolicy::new(4);
        let mut f = Feeder::new();
        f.access(&mut arc, blk(0, 1), SimTime::ZERO);
        assert_eq!(arc.list_sizes().0, 1, "first touch lands in T1");
        f.access(&mut arc, blk(0, 1), SimTime::ZERO);
        let (t1, t2, _, _) = arc.list_sizes();
        assert_eq!((t1, t2), (0, 1), "second touch promotes to T2");
    }

    #[test]
    fn ghost_hits_adapt_the_recency_target() {
        let mut arc = ArcPolicy::new(2);
        let mut f = Feeder::new();
        let mut feed = |arc: &mut ArcPolicy, b| f.access_bounded(arc, 2, b, SimTime::ZERO);
        // Promote block 1 into T2 so T1 stays below capacity and later
        // T1 evictions are ghosted into B1 (with T1 full and B1 empty,
        // real ARC drops victims un-ghosted).
        feed(&mut arc, blk(0, 1));
        feed(&mut arc, blk(0, 1)); // hit → T2
        feed(&mut arc, blk(0, 2)); // T1:[2]
        feed(&mut arc, blk(0, 3)); // evicts 2 → B1
        assert_eq!(arc.list_sizes().2, 1, "B1 holds the ghost of block 2");
        let p_before = arc.recency_target();
        feed(&mut arc, blk(0, 2)); // B1 ghost hit
        assert!(arc.recency_target() > p_before, "B1 hit must grow p");
    }

    #[test]
    fn scan_resistance_beats_lru() {
        // A loop of frequent blocks polluted by a one-shot scan: ARC keeps
        // the loop in T2; LRU flushes it.
        let mut pattern = Vec::new();
        for round in 0..30u64 {
            for hot in 0..3u64 {
                pattern.push(hot);
            }
            pattern.push(1_000 + round); // the scan
        }
        let t = seq_trace(&pattern);
        let arc = count_misses(&t, 4, Box::new(ArcPolicy::new(4)));
        let lru = count_misses(&t, 4, Box::new(Lru::new()));
        assert!(arc <= lru, "arc {arc} vs lru {lru}");
    }

    #[test]
    fn ghost_lists_stay_bounded() {
        let mut cache = crate::BlockCache::new(
            8,
            Box::new(ArcPolicy::new(8)),
            crate::WritePolicy::WriteBack,
        );
        for i in 0..2_000u64 {
            let b = blk(0, i % 100);
            cache.access_alloc(
                &pc_trace::Record::new(SimTime::from_millis(i), b, pc_trace::IoOp::Read),
                |_| false,
            );
        }
        // The DBL(2c) invariant: total tracked ids ≤ 2c.
        // (Probed indirectly: the cache still works and capacity holds.)
        assert!(cache.len() <= 8);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn rejects_zero_capacity() {
        let _ = ArcPolicy::new(0);
    }
}
