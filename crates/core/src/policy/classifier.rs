//! The PA per-disk workload classifier (paper §4), shared by
//! [`PaLru`](crate::policy::PaLru) and the generic [`Pa`](crate::policy::Pa)
//! wrapper.
//!
//! Tracks, per disk and per epoch, the cold-access fraction (Bloom
//! filter) and the distribution of disk-request interval lengths
//! (histogram), and classifies each disk as *priority* (few cold
//! accesses **and** long intervals with high probability) or *regular*.

use pc_units::{DiskId, SimDuration, SimTime};

use crate::policy::PaLruConfig;
use crate::{BloomFilter, IntervalHistogram};

/// Per-disk, per-epoch statistics.
#[derive(Debug, Clone, Default)]
struct DiskTracker {
    accesses: u64,
    cold: u64,
    intervals: Option<IntervalHistogram>,
    last_miss: Option<SimTime>,
}

/// Epoch-based priority/regular classification of disks.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{DiskClassifier, PaLruConfig};
/// use pc_units::{BlockId, BlockNo, DiskId, SimDuration, SimTime};
///
/// let mut c = DiskClassifier::new(PaLruConfig {
///     epoch: SimDuration::from_secs(50),
///     ..PaLruConfig::default()
/// });
/// // One cold, widely-spaced miss per epoch on disk 0: priority once the
/// // Bloom filter has seen its working set.
/// for e in 0..4u64 {
///     let b = BlockId::new(DiskId::new(0), BlockNo::new(e % 2));
///     c.observe(b, SimTime::from_secs(e * 60), true);
/// }
/// assert!(c.is_priority(DiskId::new(0)));
/// ```
#[derive(Debug)]
pub struct DiskClassifier {
    config: PaLruConfig,
    bloom: BloomFilter,
    /// Per-epoch statistics, indexed by disk (`DiskId` is dense).
    trackers: Vec<DiskTracker>,
    /// Current class per disk (`true` = priority); grows with `trackers`.
    priority: Vec<bool>,
    epoch_end: Option<SimTime>,
    epochs_completed: u64,
}

impl DiskClassifier {
    /// Creates a classifier with the given PA parameters.
    #[must_use]
    pub fn new(config: PaLruConfig) -> Self {
        let bloom = BloomFilter::new(config.bloom_bits, config.bloom_hashes);
        DiskClassifier {
            config,
            bloom,
            trackers: Vec::new(),
            priority: Vec::new(),
            epoch_end: None,
            epochs_completed: 0,
        }
    }

    /// Grows the disk-indexed arrays to cover `disk`.
    fn ensure_disk(&mut self, disk: usize) {
        if disk >= self.trackers.len() {
            self.trackers.resize_with(disk + 1, DiskTracker::default);
            self.priority.resize(disk + 1, false);
        }
    }

    /// Observes one cache access (`miss = true` when the access reaches
    /// the disk). Must be called for every access, in time order.
    pub fn observe(&mut self, block: pc_units::BlockId, time: SimTime, miss: bool) {
        self.maybe_roll_epoch(time);
        let d = block.disk().as_usize();
        self.ensure_disk(d);
        let seen_before = self.bloom.insert_check(block);
        let tracker = &mut self.trackers[d];
        tracker.accesses += 1;
        if !seen_before {
            tracker.cold += 1;
        }
        if miss {
            if let Some(last) = tracker.last_miss {
                let gap = time.saturating_since(last);
                tracker
                    .intervals
                    .get_or_insert_with(IntervalHistogram::standard)
                    .record(gap);
            }
            tracker.last_miss = Some(time);
        }
    }

    /// Whether `disk` is currently classified as priority.
    #[must_use]
    #[inline]
    pub fn is_priority(&self, disk: DiskId) -> bool {
        self.priority.get(disk.as_usize()).copied().unwrap_or(false)
    }

    /// Number of completed classification epochs.
    #[must_use]
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    /// Test-only hook: force a disk into the priority class.
    #[cfg(test)]
    pub(crate) fn force_priority(&mut self, disk: DiskId) {
        self.ensure_disk(disk.as_usize());
        self.priority[disk.as_usize()] = true;
    }

    fn maybe_roll_epoch(&mut self, time: SimTime) {
        let end = *self.epoch_end.get_or_insert(time + self.config.epoch);
        if time < end {
            return;
        }
        for (disk, tracker) in self.trackers.iter_mut().enumerate() {
            if tracker.accesses == 0 {
                continue; // silent disk: keep its previous class
            }
            let cold_fraction = tracker.cold as f64 / tracker.accesses as f64;
            let quantile = match &tracker.intervals {
                Some(h) if h.total() > 0 => h.quantile(self.config.quantile),
                // No recorded miss interval this epoch: the disk's request
                // gaps exceed the epoch itself.
                _ => SimDuration::MAX,
            };
            let is_priority = cold_fraction <= self.config.cold_threshold
                && quantile >= self.config.interval_threshold;
            self.priority[disk] = is_priority;
            tracker.accesses = 0;
            tracker.cold = 0;
            if let Some(h) = tracker.intervals.as_mut() {
                h.reset();
            }
        }
        self.epochs_completed += 1;
        // Skip forward over silent stretches.
        let mut next = end;
        while next <= time {
            next += self.config.epoch;
        }
        self.epoch_end = Some(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_units::{BlockId, BlockNo};

    fn blk(d: u32, b: u64) -> BlockId {
        BlockId::new(DiskId::new(d), BlockNo::new(b))
    }

    fn config(epoch_secs: u64) -> PaLruConfig {
        PaLruConfig {
            epoch: SimDuration::from_secs(epoch_secs),
            interval_threshold: SimDuration::from_secs(10),
            ..PaLruConfig::default()
        }
    }

    #[test]
    fn cold_heavy_disks_stay_regular() {
        let mut c = DiskClassifier::new(config(100));
        for i in 0..300u64 {
            c.observe(blk(0, i), SimTime::from_secs(i), true);
        }
        assert!(!c.is_priority(DiskId::new(0)));
        assert!(c.epochs_completed() >= 2);
    }

    #[test]
    fn short_gap_disks_stay_regular_despite_low_cold_fraction() {
        let mut c = DiskClassifier::new(config(100));
        // Two blocks ping-ponging with 1 s gaps: warm but dense.
        for i in 0..300u64 {
            c.observe(blk(0, i % 2), SimTime::from_secs(i), true);
        }
        assert!(!c.is_priority(DiskId::new(0)));
    }

    #[test]
    fn warm_long_gap_disks_become_priority() {
        let mut c = DiskClassifier::new(config(100));
        for i in 0..30u64 {
            c.observe(blk(0, i % 3), SimTime::from_secs(i * 20), true);
        }
        assert!(c.is_priority(DiskId::new(0)));
    }

    #[test]
    fn epoch_roll_decisions_are_pinned() {
        // Pins the exact classification sequence across two epoch rolls,
        // guarding the disk-indexed rewrite against semantic drift: the
        // same accesses must yield the same decisions and the same epoch
        // count as the map-based implementation did.
        let mut c = DiskClassifier::new(config(100));
        let disk = |d| DiskId::new(d);
        // Epoch 1 (t < 100):
        //   disk 0 — warm 2-block set, 25 s gaps  → priority
        //   disk 1 — all-cold stream, 25 s gaps   → regular (cold fraction 1)
        //   disk 2 — warm 2-block set, 5 s gaps   → regular (short intervals)
        for i in 0..4u64 {
            c.observe(blk(0, i % 2), SimTime::from_secs(i * 25), true);
            c.observe(blk(1, 100 + i), SimTime::from_secs(i * 25), true);
        }
        for i in 0..16u64 {
            c.observe(blk(2, 200 + i % 2), SimTime::from_secs(i * 5), true);
        }
        assert_eq!(c.epochs_completed(), 0, "still inside the first epoch");
        // First access at t >= 100 rolls the epoch before being counted.
        c.observe(blk(0, 0), SimTime::from_secs(100), true);
        assert_eq!(c.epochs_completed(), 1);
        assert!(c.is_priority(disk(0)), "warm long-gap disk is priority");
        assert!(!c.is_priority(disk(1)), "cold stream stays regular");
        assert!(!c.is_priority(disk(2)), "short-gap disk stays regular");
        // Epoch 2 (100 <= t < 200): disk 0 turns into an all-cold stream
        // and must flip to regular at the next roll, while disk 1 re-uses
        // its epoch-1 blocks with long gaps and must flip to priority.
        for i in 1..4u64 {
            c.observe(blk(0, 1_000 + i), SimTime::from_secs(100 + i * 25), true);
            c.observe(blk(1, 100 + i), SimTime::from_secs(100 + i * 25), true);
        }
        c.observe(blk(0, 0), SimTime::from_secs(200), true);
        assert_eq!(c.epochs_completed(), 2);
        assert!(!c.is_priority(disk(0)), "disk 0 flips to regular");
        assert!(c.is_priority(disk(1)), "disk 1 flips to priority");
        assert!(
            !c.is_priority(disk(2)),
            "silent disk 2 keeps its previous class"
        );
        assert!(!c.is_priority(disk(3)), "never-seen disks default regular");
    }

    #[test]
    fn classification_is_per_disk() {
        let mut c = DiskClassifier::new(config(100));
        for i in 0..300u64 {
            c.observe(blk(0, i), SimTime::from_secs(i), true); // cold stream
            if i % 20 == 0 {
                c.observe(blk(1, (i / 20) % 3), SimTime::from_secs(i), true);
            }
        }
        assert!(!c.is_priority(DiskId::new(0)));
        assert!(c.is_priority(DiskId::new(1)));
    }
}
