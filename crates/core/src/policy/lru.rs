//! Least-recently-used replacement.

use std::collections::{BTreeMap, HashMap};

use pc_units::{BlockId, SimTime};

use crate::policy::ReplacementPolicy;

/// Classic LRU: evicts the block whose last access is oldest.
///
/// This is the paper's baseline policy and the recency stack PA-LRU builds
/// on.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{Lru, ReplacementPolicy};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
/// let mut lru = Lru::new();
/// lru.on_access(blk(1), SimTime::from_secs(1), false);
/// lru.on_insert(blk(1), SimTime::from_secs(1));
/// lru.on_access(blk(2), SimTime::from_secs(2), false);
/// lru.on_insert(blk(2), SimTime::from_secs(2));
/// lru.on_access(blk(1), SimTime::from_secs(3), true); // refresh 1
/// assert_eq!(lru.evict(), blk(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lru {
    /// Recency order: sequence number → block (oldest first).
    order: BTreeMap<u64, BlockId>,
    /// Block → its current sequence number.
    seq_of: HashMap<BlockId, u64>,
    next_seq: u64,
}

impl Lru {
    /// Creates an empty LRU stack.
    #[must_use]
    pub fn new() -> Self {
        Lru::default()
    }

    /// Number of tracked blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if no block is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    fn touch(&mut self, block: BlockId) {
        if let Some(old) = self.seq_of.insert(block, self.next_seq) {
            self.order.remove(&old);
        }
        self.order.insert(self.next_seq, block);
        self.next_seq += 1;
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> String {
        "lru".to_owned()
    }

    fn on_access(&mut self, block: BlockId, _time: SimTime, hit: bool) {
        if hit {
            self.touch(block);
        }
    }

    fn on_insert(&mut self, block: BlockId, _time: SimTime) {
        self.touch(block);
    }

    fn evict(&mut self) -> BlockId {
        let (&seq, &block) = self.order.iter().next().expect("no block to evict");
        self.order.remove(&seq);
        self.seq_of.remove(&block);
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses, seq_trace};

    #[test]
    fn evicts_least_recent() {
        let mut lru = Lru::new();
        for n in 1..=3 {
            lru.on_access(blk(0, n), SimTime::from_secs(n), false);
            lru.on_insert(blk(0, n), SimTime::from_secs(n));
        }
        lru.on_access(blk(0, 1), SimTime::from_secs(10), true);
        assert_eq!(lru.evict(), blk(0, 2));
        assert_eq!(lru.evict(), blk(0, 3));
        assert_eq!(lru.evict(), blk(0, 1));
        assert!(lru.is_empty());
    }

    #[test]
    fn misses_on_cyclic_scan_exceed_capacity() {
        // LRU's classic pathology: a cyclic scan of N+1 blocks through an
        // N-block cache misses every time.
        let t = seq_trace(&[1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]);
        assert_eq!(count_misses(&t, 3, Box::new(Lru::new())), 12);
    }

    #[test]
    fn hits_on_recency_friendly_stream() {
        let t = seq_trace(&[1, 2, 1, 2, 1, 2, 3, 3, 3]);
        assert_eq!(count_misses(&t, 2, Box::new(Lru::new())), 3);
    }

    #[test]
    #[should_panic(expected = "no block")]
    fn evict_on_empty_panics() {
        Lru::new().evict();
    }
}
