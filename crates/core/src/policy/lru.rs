//! Least-recently-used replacement.

use pc_units::{BlockId, SimTime};

use crate::policy::{IndexList, ReplacementPolicy};
use crate::table::Slot;

/// Classic LRU: evicts the block whose last access is oldest.
///
/// This is the paper's baseline policy and the recency stack PA-LRU builds
/// on. The stack is a slot-indexed [`IndexList`], so touch, insert and
/// evict are all O(1).
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{Lru, ReplacementPolicy};
/// use pc_cache::Slot;
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
/// let mut lru = Lru::new();
/// lru.on_access(None, blk(1), SimTime::from_secs(1));
/// lru.on_insert(Slot::new(0), blk(1), SimTime::from_secs(1));
/// lru.on_access(None, blk(2), SimTime::from_secs(2));
/// lru.on_insert(Slot::new(1), blk(2), SimTime::from_secs(2));
/// lru.on_access(Some(Slot::new(0)), blk(1), SimTime::from_secs(3)); // refresh 1
/// assert_eq!(lru.evict(), Slot::new(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lru {
    /// Recency order: front = most recent, back = eviction candidate.
    list: IndexList,
}

impl Lru {
    /// Creates an empty LRU stack.
    #[must_use]
    pub fn new() -> Self {
        Lru::default()
    }

    /// Number of tracked blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Returns `true` if no block is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> String {
        "lru".to_owned()
    }

    fn on_access(&mut self, slot: Option<Slot>, _block: BlockId, _time: SimTime) {
        if let Some(slot) = slot {
            self.list.move_to_front(slot);
        }
    }

    fn on_insert(&mut self, slot: Slot, _block: BlockId, _time: SimTime) {
        self.list.push_front(slot);
    }

    fn evict(&mut self) -> Slot {
        self.list.pop_back().expect("no block to evict")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses, seq_trace, Feeder};

    #[test]
    fn evicts_least_recent() {
        let mut lru = Lru::new();
        let mut f = Feeder::new();
        for n in 1..=3 {
            f.access(&mut lru, blk(0, n), SimTime::from_secs(n));
        }
        f.access(&mut lru, blk(0, 1), SimTime::from_secs(10));
        assert_eq!(f.evict(&mut lru), blk(0, 2));
        assert_eq!(f.evict(&mut lru), blk(0, 3));
        assert_eq!(f.evict(&mut lru), blk(0, 1));
        assert!(lru.is_empty());
    }

    #[test]
    fn misses_on_cyclic_scan_exceed_capacity() {
        // LRU's classic pathology: a cyclic scan of N+1 blocks through an
        // N-block cache misses every time.
        let t = seq_trace(&[1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]);
        assert_eq!(count_misses(&t, 3, Box::new(Lru::new())), 12);
    }

    #[test]
    fn hits_on_recency_friendly_stream() {
        let t = seq_trace(&[1, 2, 1, 2, 1, 2, 3, 3, 3]);
        assert_eq!(count_misses(&t, 2, Box::new(Lru::new())), 3);
    }

    #[test]
    #[should_panic(expected = "no block")]
    fn evict_on_empty_panics() {
        Lru::new().evict();
    }
}
