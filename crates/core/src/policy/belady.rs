//! Belady's off-line MIN algorithm.

use std::collections::BTreeSet;

use pc_trace::Trace;
use pc_units::{BlockId, SimTime};
use rustc_hash::FxHashMap;

use crate::offline::OfflineIndex;
use crate::policy::ReplacementPolicy;
use crate::table::Slot;

/// Belady's MIN: evicts the resident block whose next reference lies
/// furthest in the future. Minimizes the miss count — but, as the paper's
/// §3.1 shows, *not* disk energy.
///
/// Constructed from the trace it will replay; see the
/// [protocol](crate::policy).
///
/// # Examples
///
/// ```
/// use pc_cache::policy::Belady;
/// use pc_cache::{BlockCache, WritePolicy};
/// use pc_trace::{IoOp, Record, Trace};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
/// let mut t = Trace::new(1);
/// for (i, b) in [1u64, 2, 3, 1, 2].into_iter().enumerate() {
///     t.push(Record::new(SimTime::from_secs(i as u64), blk(b), IoOp::Read));
/// }
/// let mut cache = BlockCache::new(2, Box::new(Belady::new(&t)), WritePolicy::WriteBack);
/// let misses: u64 = t.iter().map(|r| u64::from(!cache.access_alloc(r, |_| false).hit)).sum();
/// // 3 cold misses; inserting 3 sacrifices the block reused furthest
/// // away (2), so 1 hits and 2 misses once more.
/// assert_eq!(misses, 4);
/// ```
#[derive(Debug, Clone)]
pub struct Belady {
    index: OfflineIndex,
    /// Position of the next `on_access` call within the trace.
    cursor: usize,
    /// Resident blocks ordered by next reference (`NO_NEXT` = ∞ last);
    /// ties broken by block id for determinism.
    by_next: BTreeSet<(u32, BlockId)>,
    next_of: FxHashMap<BlockId, (u32, Slot)>,
}

impl Belady {
    /// Builds MIN's future-knowledge tables for `trace`.
    #[must_use]
    pub fn new(trace: &Trace) -> Self {
        Belady {
            index: OfflineIndex::build(trace),
            cursor: 0,
            by_next: BTreeSet::new(),
            next_of: FxHashMap::default(),
        }
    }

    fn reposition(&mut self, slot: Slot, block: BlockId, next: u32) {
        if let Some((old, _)) = self.next_of.insert(block, (next, slot)) {
            self.by_next.remove(&(old, block));
        }
        self.by_next.insert((next, block));
    }
}

impl ReplacementPolicy for Belady {
    fn name(&self) -> String {
        "belady".to_owned()
    }

    fn on_access(&mut self, slot: Option<Slot>, block: BlockId, _time: SimTime) {
        assert!(
            self.cursor < self.index.len(),
            "access beyond the indexed trace"
        );
        let next = self.index.next_raw(self.cursor);
        self.cursor += 1;
        if let Some(slot) = slot {
            self.reposition(slot, block, next);
        }
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, _time: SimTime) {
        // The insert follows the on_access that advanced the cursor past
        // the current access; its next-occurrence is that access's link.
        let next = self.index.next_raw(self.cursor - 1);
        self.reposition(slot, block, next);
    }

    fn evict(&mut self) -> Slot {
        let &(next, block) = self.by_next.iter().next_back().expect("no block to evict");
        self.by_next.remove(&(next, block));
        let (_, slot) = self
            .next_of
            .remove(&block)
            .expect("victim has a next-reference entry");
        slot
    }

    fn on_prefetch_insert(&mut self, _slot: Slot, _block: BlockId, _time: SimTime) {
        panic!("Belady is an off-line policy and does not support prefetching");
    }
}

/// Convenience: MIN's miss count for a trace and cache size, the paper's
/// lower bound on misses.
#[must_use]
pub fn min_misses(trace: &Trace, capacity: usize) -> u64 {
    use crate::{BlockCache, WritePolicy};
    let mut cache = BlockCache::new(
        capacity,
        Box::new(Belady::new(trace)),
        WritePolicy::WriteBack,
    );
    let mut effects = Vec::new();
    trace
        .iter()
        .map(|r| u64::from(!cache.access(r, |_| false, &mut effects).hit))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{count_misses, seq_trace, Feeder};
    use crate::policy::{Fifo, Lru};

    #[test]
    fn beats_lru_on_cyclic_scan() {
        let t = seq_trace(&[1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]);
        let belady = count_misses(&t, 3, Box::new(Belady::new(&t)));
        let lru = count_misses(&t, 3, Box::new(Lru::new()));
        assert!(belady < lru, "belady {belady} vs lru {lru}");
        // MIN on a cyclic scan of 4 blocks with 3 frames: 4 cold + 1 miss
        // per subsequent lap is optimal-ish; exact value checked.
        assert_eq!(belady, 6);
    }

    #[test]
    fn never_worse_than_lru_or_fifo_on_random_streams() {
        // Deterministic pseudo-random block streams.
        let mut state = 0xDEADBEEFu64;
        for round in 0..10 {
            let blocks: Vec<u64> = (0..200)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % (10 + round)
                })
                .collect();
            let t = seq_trace(&blocks);
            let belady = count_misses(&t, 4, Box::new(Belady::new(&t)));
            let lru = count_misses(&t, 4, Box::new(Lru::new()));
            let fifo = count_misses(&t, 4, Box::new(Fifo::new()));
            assert!(belady <= lru, "round {round}: belady {belady} lru {lru}");
            assert!(belady <= fifo, "round {round}: belady {belady} fifo {fifo}");
        }
    }

    #[test]
    fn min_misses_helper_agrees() {
        let t = seq_trace(&[1, 2, 3, 1, 2, 3]);
        assert_eq!(
            min_misses(&t, 2),
            count_misses(&t, 2, Box::new(Belady::new(&t)))
        );
    }

    #[test]
    #[should_panic(expected = "beyond the indexed trace")]
    fn rejects_extra_accesses() {
        let t = seq_trace(&[1]);
        let b1 = crate::policy::testutil::blk(0, 1);
        let mut b = Belady::new(&t);
        let mut f = Feeder::new();
        f.access(&mut b, b1, SimTime::ZERO);
        b.on_access(Some(f.slot_of(b1)), b1, SimTime::ZERO);
    }
}
