//! The adaptive meta-policy: online selection *among* the online
//! policies.
//!
//! The paper's central observation is that workload character — cold-miss
//! rates, inter-arrival distributions — is observable online and should
//! drive cache behaviour. PA-LRU applies that observation *within* one
//! policy; [`MetaPolicy`] applies it *to the choice of policy itself*,
//! in the spirit of AWRP's adaptive weight-ranking: it wraps the online
//! policy family, keeps exactly one sub-policy live, and at every epoch
//! boundary re-scores the whole family against the epoch's aggregate
//! statistics (hit ratio, cold-miss fraction, miss-gap distribution),
//! switching champions when another policy's smoothed weight clears the
//! incumbent's by a hysteresis margin.
//!
//! Epochs are **access-count** based, not time based: the serving layer
//! stamps arrivals with wall-clock micros while the simulator replays
//! virtual record times, and a count-based boundary lands on the same
//! access in both worlds. That is what makes switch decisions — and
//! therefore whole reports — byte-identical across runs.
//!
//! A switch must not dump the cache: the wrapper mirrors the resident set
//! (slot, block, last access) and warms the incoming sub-policy by
//! replaying the miss protocol (`on_access(None)` + `on_insert`) over the
//! residents in recency order, oldest first. The cache contents are
//! untouched; only the bookkeeping changes hands.

use pc_units::{BlockId, SimDuration, SimTime};

use crate::policy::{ArcPolicy, Fifo, Lirs, Lru, Mq, Pa, PaLru, PaLruConfig, TwoQ};
use crate::table::Slot;
use crate::{BloomFilter, IntervalHistogram, ReplacementPolicy};

use super::MetaStats;

/// The candidate family, in fixed score order (ties break toward the
/// lower index). These are the 11 online policies the simulator exposes.
const CANDIDATES: [&str; 11] = [
    "lru", "fifo", "arc", "mq", "lirs", "2q", "pa-lru", "pa-arc", "pa-mq", "pa-lirs", "pa-2q",
];

/// Index of the starting champion (`lru` — the paper's baseline).
const INITIAL: usize = 0;

/// Tuning knobs for [`MetaPolicy`].
///
/// The defaults pair a 1024-access epoch with an exponentially smoothed
/// weight table (decay ½) and a 0.05 switch margin: long enough to see a
/// regime, reactive enough to catch a phase change within a couple of
/// epochs, and sticky enough that stationary workloads converge to one
/// champion and stay there.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaConfig {
    /// Epoch length, in cache accesses (block granularity).
    pub epoch_accesses: u64,
    /// How much a challenger's smoothed weight must exceed the
    /// incumbent's before the meta-policy switches.
    pub margin: f64,
    /// Exponential smoothing factor for the weight table (fraction of
    /// the *old* weight kept each epoch).
    pub decay: f64,
    /// Miss gaps at or above this count as "long" — the power break-even
    /// horizon that makes the PA variants worth their bookkeeping.
    pub interval_threshold: SimDuration,
    /// Cache capacity in blocks, for the sub-policies that size ghost
    /// structures (ARC, MQ, LIRS, 2Q).
    pub capacity: usize,
    /// Classification parameters handed to the PA sub-policies.
    pub pa: PaLruConfig,
}

impl MetaConfig {
    /// A configuration for a cache of `capacity` blocks with default PA
    /// parameters.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        MetaConfig {
            epoch_accesses: 1024,
            margin: 0.05,
            decay: 0.5,
            interval_threshold: PaLruConfig::default().interval_threshold,
            capacity: capacity.min(1 << 30),
            pa: PaLruConfig::default(),
        }
    }

    /// Derives the power-dependent thresholds from a concrete power
    /// model, exactly as [`PaLruConfig::for_power_model`] does for
    /// PA-LRU.
    #[must_use]
    pub fn for_power_model(power: &pc_diskmodel::PowerModel, capacity: usize) -> Self {
        let pa = PaLruConfig::for_power_model(power);
        MetaConfig {
            interval_threshold: pa.interval_threshold,
            pa,
            ..MetaConfig::new(capacity)
        }
    }
}

/// A resident block as the wrapper mirrors it: enough to replay the miss
/// protocol into a fresh sub-policy on a switch.
#[derive(Debug, Clone, Copy)]
struct Resident {
    block: BlockId,
    last: SimTime,
    seq: u64,
}

/// Aggregate statistics for the current epoch.
#[derive(Debug)]
struct EpochWindow {
    accesses: u64,
    hits: u64,
    misses: u64,
    cold: u64,
    gaps: IntervalHistogram,
    last_miss: Option<SimTime>,
}

impl EpochWindow {
    fn new() -> Self {
        EpochWindow {
            accesses: 0,
            hits: 0,
            misses: 0,
            cold: 0,
            gaps: IntervalHistogram::standard(),
            last_miss: None,
        }
    }

    fn reset(&mut self) {
        self.accesses = 0;
        self.hits = 0;
        self.misses = 0;
        self.cold = 0;
        self.gaps.reset();
        // last_miss survives the roll: gaps spanning an epoch boundary
        // are still real gaps.
    }
}

/// The adaptive meta-policy — see the module documentation above.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{MetaConfig, MetaPolicy};
/// use pc_cache::{BlockCache, WritePolicy};
///
/// let meta = MetaPolicy::new(MetaConfig::new(1024));
/// let cache = BlockCache::new(1024, Box::new(meta), WritePolicy::WriteBack);
/// assert_eq!(cache.policy_name(), "meta");
/// let stats = cache.meta_stats().expect("meta policy exposes gauges");
/// assert_eq!(stats.active, "lru");
/// assert_eq!(stats.switches, 0);
/// ```
pub struct MetaPolicy {
    config: MetaConfig,
    active: Box<dyn ReplacementPolicy>,
    active_idx: usize,
    /// Smoothed per-candidate weights (AWRP-style ranking state).
    weights: [f64; CANDIDATES.len()],
    /// Slot-indexed mirror of the resident set.
    resident: Vec<Option<Resident>>,
    seq: u64,
    epoch: EpochWindow,
    bloom: BloomFilter,
    switches: u64,
    epochs: u64,
}

impl std::fmt::Debug for MetaPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaPolicy")
            .field("active", &CANDIDATES[self.active_idx])
            .field("switches", &self.switches)
            .field("epochs", &self.epochs)
            .finish_non_exhaustive()
    }
}

impl MetaPolicy {
    /// Creates a meta-policy starting on LRU with a uniform weight table.
    #[must_use]
    pub fn new(config: MetaConfig) -> Self {
        let bloom = BloomFilter::new(config.pa.bloom_bits, config.pa.bloom_hashes);
        let active = build_candidate(INITIAL, &config);
        MetaPolicy {
            config,
            active,
            active_idx: INITIAL,
            weights: [0.5; CANDIDATES.len()],
            resident: Vec::new(),
            seq: 0,
            epoch: EpochWindow::new(),
            bloom,
            switches: 0,
            epochs: 0,
        }
    }

    /// The live sub-policy's canonical name.
    #[must_use]
    pub fn active_name(&self) -> &'static str {
        CANDIDATES[self.active_idx]
    }

    /// Number of champion switches so far.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of completed selection epochs.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    fn remember(&mut self, slot: Slot, block: BlockId, time: SimTime) {
        let idx = slot.index();
        if idx >= self.resident.len() {
            self.resident.resize(idx + 1, None);
        }
        self.seq += 1;
        self.resident[idx] = Some(Resident {
            block,
            last: time,
            seq: self.seq,
        });
    }

    /// Rolls the epoch: score every candidate against the window's
    /// features, fold the scores into the smoothed weights, and switch
    /// champions if a challenger clears the incumbent by the margin.
    fn roll_epoch(&mut self, time: SimTime) {
        let w = &self.epoch;
        let hit_ratio = w.hits as f64 / w.accesses.max(1) as f64;
        let cold_fraction = w.cold as f64 / w.misses.max(1) as f64;
        let long_gap = if w.gaps.total() == 0 {
            // No recorded miss gap this epoch: either everything hit or
            // misses are rarer than the epoch itself — the disks idle
            // long, which is exactly the power-aware regime.
            1.0
        } else {
            let mut below = 0.0;
            for (edge, f) in w.gaps.cdf() {
                if edge < self.config.interval_threshold {
                    below = f;
                } else {
                    break;
                }
            }
            1.0 - below
        };

        let scores = candidate_scores(hit_ratio, cold_fraction, long_gap);
        let keep = self.config.decay;
        for (weight, score) in self.weights.iter_mut().zip(scores) {
            *weight = keep * *weight + (1.0 - keep) * score;
        }

        let mut best = 0;
        for i in 1..CANDIDATES.len() {
            if self.weights[i] > self.weights[best] {
                best = i;
            }
        }
        if best != self.active_idx
            && self.weights[best] > self.weights[self.active_idx] + self.config.margin
        {
            self.switch_to(best, time);
        }

        self.epochs += 1;
        self.epoch.reset();
    }

    /// Hands the resident set to a freshly built candidate, replaying the
    /// miss protocol in recency order (oldest first) so the incoming
    /// policy's recency structures agree with reality.
    fn switch_to(&mut self, idx: usize, _time: SimTime) {
        let mut warm: Vec<(u64, Slot, BlockId, SimTime)> = self
            .resident
            .iter()
            .enumerate()
            .filter_map(|(slot, r)| r.map(|r| (r.seq, Slot::new(slot as u32), r.block, r.last)))
            .collect();
        warm.sort_unstable_by_key(|&(seq, ..)| seq);
        let mut next = build_candidate(idx, &self.config);
        for &(_, slot, block, last) in &warm {
            next.on_access(None, block, last);
            next.on_insert(slot, block, last);
        }
        self.active = next;
        self.active_idx = idx;
        self.switches += 1;
    }
}

impl ReplacementPolicy for MetaPolicy {
    fn name(&self) -> String {
        "meta".into()
    }

    fn on_access(&mut self, slot: Option<Slot>, block: BlockId, time: SimTime) {
        // Roll on the boundary *before* the access, so a switch always
        // lands between complete access cycles (never between a miss's
        // on_access and its on_insert).
        if self.epoch.accesses >= self.config.epoch_accesses {
            self.roll_epoch(time);
        }
        self.epoch.accesses += 1;
        match slot {
            Some(s) => {
                self.epoch.hits += 1;
                if let Some(r) = self.resident.get_mut(s.index()).and_then(Option::as_mut) {
                    self.seq += 1;
                    r.last = time;
                    r.seq = self.seq;
                }
            }
            None => {
                self.epoch.misses += 1;
                if !self.bloom.insert_check(block) {
                    self.epoch.cold += 1;
                }
                if let Some(last) = self.epoch.last_miss {
                    self.epoch.gaps.record(time.saturating_since(last));
                }
                self.epoch.last_miss = Some(time);
            }
        }
        self.active.on_access(slot, block, time);
    }

    fn evict(&mut self) -> Slot {
        let slot = self.active.evict();
        if let Some(r) = self.resident.get_mut(slot.index()) {
            *r = None;
        }
        slot
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, time: SimTime) {
        self.remember(slot, block, time);
        self.active.on_insert(slot, block, time);
    }

    fn on_prefetch_insert(&mut self, slot: Slot, block: BlockId, time: SimTime) {
        self.remember(slot, block, time);
        self.active.on_prefetch_insert(slot, block, time);
    }

    fn meta_stats(&self) -> Option<MetaStats> {
        Some(MetaStats {
            active: CANDIDATES[self.active_idx].to_owned(),
            switches: self.switches,
            epochs: self.epochs,
        })
    }
}

/// Builds candidate `idx` from scratch.
fn build_candidate(idx: usize, config: &MetaConfig) -> Box<dyn ReplacementPolicy> {
    let sized = config.capacity;
    let pa = || config.pa.clone();
    match CANDIDATES[idx] {
        "lru" => Box::new(Lru::new()),
        "fifo" => Box::new(Fifo::new()),
        "arc" => Box::new(ArcPolicy::new(sized)),
        "mq" => Box::new(Mq::new(sized)),
        "lirs" => Box::new(Lirs::new(sized)),
        "2q" => Box::new(TwoQ::new(sized)),
        "pa-lru" => Box::new(PaLru::new(pa())),
        "pa-arc" => Box::new(Pa::new(pa(), ArcPolicy::new(sized), ArcPolicy::new(sized))),
        "pa-mq" => Box::new(Pa::new(pa(), Mq::new(sized), Mq::new(sized))),
        "pa-lirs" => Box::new(Pa::new(pa(), Lirs::new(sized), Lirs::new(sized))),
        "pa-2q" => Box::new(Pa::new(pa(), TwoQ::new(sized), TwoQ::new(sized))),
        other => unreachable!("unknown meta candidate {other}"),
    }
}

/// The per-epoch affinity of every candidate for the observed regime,
/// each in roughly `[0, 1.25]`:
///
/// * recency policies score with the hit ratio (dense warm reuse),
/// * FIFO only becomes competitive when cold streams dominate (where
///   every policy degenerates to the same miss sequence anyway),
/// * the adaptive structures (ARC, LIRS) gain when the workload is warm
///   but the hit ratio is poor — the thrash/scan regimes they resist,
/// * each PA variant takes its base policy's score scaled by the
///   long-gap fraction, crossing 1 when half the miss gaps clear the
///   break-even point: above that the classifier's priority protection
///   pays; below it, it is pure overhead.
fn candidate_scores(h: f64, c: f64, g: f64) -> [f64; CANDIDATES.len()] {
    let warm = 1.0 - c;
    let lru = 0.60 + 0.40 * h;
    let fifo = 0.30 + 0.40 * c;
    let arc = 0.55 + 0.45 * warm * (1.0 - h);
    let mq = 0.50 + 0.50 * h * warm;
    let lirs = 0.45 + 0.45 * warm * (1.0 - h);
    let two_q = 0.45 + 0.35 * warm;
    let pa = 0.70 + 0.60 * g;
    [
        lru,
        fifo,
        arc,
        mq,
        lirs,
        two_q,
        lru * pa,
        arc * pa,
        mq * pa,
        lirs * pa,
        two_q * pa,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, Feeder};

    fn meta(epoch: u64) -> MetaPolicy {
        MetaPolicy::new(MetaConfig {
            epoch_accesses: epoch,
            ..MetaConfig::new(1024)
        })
    }

    #[test]
    fn starts_on_lru_with_no_switches() {
        let m = meta(64);
        assert_eq!(m.name(), "meta");
        assert_eq!(m.active_name(), "lru");
        let s = m.meta_stats().unwrap();
        assert_eq!((s.active.as_str(), s.switches, s.epochs), ("lru", 0, 0));
    }

    #[test]
    fn sparse_warm_traffic_switches_to_a_power_aware_policy() {
        // A small warm set re-accessed with 60 s gaps: every miss gap is
        // far past the 10 s break-even, so the PA multiplier lifts pa-lru
        // over lru within a few epochs.
        let mut m = meta(32);
        let mut f = Feeder::new();
        for i in 0..400u64 {
            let t = SimTime::from_secs(i * 60);
            f.access(&mut m, blk(0, i % 3), t);
        }
        assert!(m.switches() > 0, "expected a champion switch");
        assert!(
            m.active_name().starts_with("pa-"),
            "active {}",
            m.active_name()
        );
    }

    #[test]
    fn decisions_are_deterministic() {
        let drive = || {
            let mut m = meta(16);
            let mut f = Feeder::new();
            let mut log = Vec::new();
            for i in 0..600u64 {
                // Dense phase then sparse phase.
                let gap = if i < 300 { 1 } else { 120 };
                f.access(&mut m, blk(0, i % 7), SimTime::from_secs(i * gap));
                log.push(m.active_name());
            }
            (log, m.switches(), m.epochs())
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn switch_hands_over_the_resident_set() {
        let mut m = meta(8);
        let mut f = Feeder::new();
        let cap = 4usize;
        // Warm four blocks with long gaps until a switch happens.
        let mut i = 0u64;
        while m.switches() == 0 {
            f.access_bounded(&mut m, cap, blk(0, i % 4), SimTime::from_secs(i * 30));
            i += 1;
            assert!(i < 10_000, "never switched");
        }
        // The new sub-policy must evict only genuinely resident blocks,
        // and all four of them exactly once.
        let mut evicted = Vec::new();
        for _ in 0..4 {
            evicted.push(f.evict(&mut m));
        }
        evicted.sort_unstable_by_key(|b| b.block().number());
        let mut expect: Vec<_> = (0..4).map(|n| blk(0, n)).collect();
        expect.sort_unstable_by_key(|b| b.block().number());
        assert_eq!(evicted, expect);
    }

    #[test]
    fn stationary_dense_traffic_stays_on_one_champion() {
        let mut m = meta(64);
        let mut f = Feeder::new();
        // Dense 1 s warm reuse: lru-friendly, never long-gap.
        for i in 0..4_000u64 {
            f.access(&mut m, blk(0, i % 9), SimTime::from_secs(i));
        }
        assert!(m.epochs() > 10);
        assert!(m.switches() <= 1, "thrashing: {} switches", m.switches());
    }
}
