//! `Pa<P>` — the generic power-aware wrapper (paper §4: "PA can be
//! combined with most existing storage cache replacement algorithms",
//! naming ARC, LIRS, DEMOTE and MQ).
//!
//! `Pa<P>` runs two independent instances of any inner policy `P`: one
//! for blocks of *regular* disks, one for blocks of *priority* disks (as
//! decided by the shared [`DiskClassifier`]). Eviction drains the regular
//! instance first — the exact bias PA-LRU applies to its two stacks,
//! generalized.
//!
//! Unlike the concrete [`PaLru`](crate::policy::PaLru) (which re-homes a
//! block on every hit), `Pa<P>` assigns a block to a class at insertion
//! time and keeps it there until eviction: generic inner policies have no
//! removal interface, and migration is a second-order effect (blocks turn
//! over within a few epochs anyway).

use pc_units::{BlockId, SimTime};

use crate::policy::{DiskClassifier, PaLruConfig, ReplacementPolicy};
use crate::table::Slot;

/// The generic power-aware two-class wrapper.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{ArcPolicy, Pa, PaLruConfig};
/// use pc_cache::{BlockCache, WritePolicy};
///
/// let pa_arc = Pa::new(
///     PaLruConfig::default(),
///     ArcPolicy::new(512),
///     ArcPolicy::new(512),
/// );
/// let cache = BlockCache::new(512, Box::new(pa_arc), WritePolicy::WriteBack);
/// assert_eq!(cache.policy_name(), "pa-arc");
/// ```
#[derive(Debug)]
pub struct Pa<P> {
    classifier: DiskClassifier,
    regular: P,
    priority: P,
    /// Class of each resident cache slot (`true` = priority instance).
    owner: Vec<bool>,
    regular_len: usize,
    priority_len: usize,
}

impl<P: ReplacementPolicy> Pa<P> {
    /// Wraps two inner-policy instances (they should be configured
    /// identically) behind the PA classifier.
    #[must_use]
    pub fn new(config: PaLruConfig, regular: P, priority: P) -> Self {
        Pa {
            classifier: DiskClassifier::new(config),
            regular,
            priority,
            owner: Vec::new(),
            regular_len: 0,
            priority_len: 0,
        }
    }

    /// Whether `disk` is currently classified as priority.
    #[must_use]
    pub fn is_priority(&self, disk: pc_units::DiskId) -> bool {
        self.classifier.is_priority(disk)
    }

    /// Sizes of the (regular, priority) instances.
    #[must_use]
    pub fn class_sizes(&self) -> (usize, usize) {
        (self.regular_len, self.priority_len)
    }
}

impl<P: ReplacementPolicy> ReplacementPolicy for Pa<P> {
    fn name(&self) -> String {
        format!("pa-{}", self.regular.name())
    }

    fn on_access(&mut self, slot: Option<Slot>, block: BlockId, time: SimTime) {
        self.classifier.observe(block, time, slot.is_none());
        if let Some(slot) = slot {
            // Route to the instance that owns the slot.
            if self.owner[slot.index()] {
                self.priority.on_access(Some(slot), block, time);
            } else {
                self.regular.on_access(Some(slot), block, time);
            }
        } else {
            // Route the miss to the instance the block will join, so
            // ghost-based policies (ARC, MQ) see their history.
            if self.classifier.is_priority(block.disk()) {
                self.priority.on_access(None, block, time);
            } else {
                self.regular.on_access(None, block, time);
            }
        }
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, time: SimTime) {
        let to_priority = self.classifier.is_priority(block.disk());
        if slot.index() >= self.owner.len() {
            self.owner.resize(slot.index() + 1, false);
        }
        self.owner[slot.index()] = to_priority;
        if to_priority {
            self.priority.on_insert(slot, block, time);
            self.priority_len += 1;
        } else {
            self.regular.on_insert(slot, block, time);
            self.regular_len += 1;
        }
    }

    fn evict(&mut self) -> Slot {
        if self.regular_len > 0 {
            self.regular_len -= 1;
            self.regular.evict()
        } else {
            assert!(self.priority_len > 0, "no block to evict");
            self.priority_len -= 1;
            self.priority.evict()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, Feeder};
    use crate::policy::{ArcPolicy, Lru, Mq};
    use pc_units::{DiskId, SimDuration};

    fn config() -> PaLruConfig {
        PaLruConfig {
            epoch: SimDuration::from_secs(100),
            interval_threshold: SimDuration::from_secs(10),
            ..PaLruConfig::default()
        }
    }

    /// The PA bias emerges for any inner policy: a warm quiet disk's
    /// blocks survive a cold flood once classified priority.
    fn protects_quiet_disk<P: ReplacementPolicy>(mut pa: Pa<P>) {
        let mut f = Feeder::new();
        let mut quiet_hits = 0u64;
        let mut quiet_accesses = 0u64;
        for i in 0..600u64 {
            let t = SimTime::from_secs(i);
            // Disk 0: cold flood.
            f.access_bounded(&mut pa, 8, blk(0, 10_000 + i), t);
            // Disk 1: 3-block working set every 20 s.
            if i % 20 == 0 {
                quiet_accesses += 1;
                if f.access_bounded(&mut pa, 8, blk(1, (i / 20) % 3), t).0 {
                    quiet_hits += 1;
                }
            }
        }
        assert!(pa.is_priority(DiskId::new(1)));
        assert!(!pa.is_priority(DiskId::new(0)));
        // After classification the tiny working set is pinned: a clear
        // majority of the quiet disk's accesses hit.
        assert!(
            quiet_hits * 2 > quiet_accesses,
            "quiet disk hits {quiet_hits}/{quiet_accesses}"
        );
    }

    #[test]
    fn pa_lru_inner_protects_quiet_disks() {
        protects_quiet_disk(Pa::new(config(), Lru::new(), Lru::new()));
    }

    #[test]
    fn pa_arc_protects_quiet_disks() {
        protects_quiet_disk(Pa::new(config(), ArcPolicy::new(8), ArcPolicy::new(8)));
    }

    #[test]
    fn pa_mq_protects_quiet_disks() {
        protects_quiet_disk(Pa::new(config(), Mq::new(8), Mq::new(8)));
    }

    #[test]
    fn name_reflects_inner_policy() {
        assert_eq!(Pa::new(config(), Lru::new(), Lru::new()).name(), "pa-lru");
        assert_eq!(
            Pa::new(config(), ArcPolicy::new(4), ArcPolicy::new(4)).name(),
            "pa-arc"
        );
        assert_eq!(Pa::new(config(), Mq::new(4), Mq::new(4)).name(), "pa-mq");
    }

    #[test]
    fn eviction_prefers_the_regular_class() {
        let mut pa = Pa::new(config(), Lru::new(), Lru::new());
        pa.classifier.force_priority(DiskId::new(1));
        let t = SimTime::from_secs(1);
        let mut f = Feeder::new();
        for (d, b) in [(1u32, 1u64), (0, 2), (1, 3)] {
            f.access(&mut pa, blk(d, b), t);
        }
        assert_eq!(f.evict(&mut pa), blk(0, 2), "regular block goes first");
        assert_eq!(pa.class_sizes(), (0, 2));
        assert_eq!(f.evict(&mut pa), blk(1, 1));
    }
}
