//! OPG — the off-line power-aware greedy algorithm (paper §3.2).
//!
//! OPG evicts the resident block whose re-fetch would cost the least
//! *energy*, not the one with the furthest reuse. The cost model rests on
//! **deterministic misses**: accesses that are bound to miss no matter
//! what the policy does from here on (initially the cold misses; every
//! eviction adds the victim's next reference). A disk must be active at
//! each of its deterministic-miss instants, so evicting block `b` — whose
//! next access `x` would otherwise be a hit — splits one known idle period
//! of `b`'s disk in two:
//!
//! ```text
//! leader l ········· x ········· follower f        (all on b's disk)
//! penalty(b) = E(x−l) + E(f−x) − E(f−l)  ≥ 0
//! ```
//!
//! where `E` is the idle-period energy function of the underlying power
//! management — the Figure-2 lower envelope for Oracle DPM, or the
//! threshold-ladder energy for Practical DPM. Sub-additivity of `E` makes
//! the penalty non-negative.
//!
//! Penalties below a threshold ε are rounded up to ε and ties evict the
//! largest forward distance, so ε→∞ degenerates to Belady's MIN and ε=0
//! is the pure greedy (paper §3.2's knob subsuming both).
//!
//! # Implementation notes
//!
//! The deterministic-miss structure makes updates *local*: adding a
//! deterministic miss at time `t` on disk `d` only re-prices resident
//! blocks whose next access falls inside the gap that contained `t`; and
//! servicing a miss at `t` replaces "leader = det-miss at `t`" with
//! "leader = disk last active at `t`", leaving every penalty unchanged.
//! Victims come from an ordered set keyed by
//! `(rounded penalty, −next-access-time, block)`, so eviction is O(log n).
//! A naive re-scan eviction mode is kept for property-testing equivalence.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound::Excluded;

use pc_diskmodel::PowerModel;
use pc_trace::Trace;
use pc_units::{BlockId, DiskId, Joules, SimDuration, SimTime};
use rustc_hash::FxHashMap;

use crate::offline::{OfflineIndex, NO_NEXT};
use crate::policy::ReplacementPolicy;
use crate::table::Slot;

/// Which disk power-management scheme OPG prices evictions against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpgDpm {
    /// Price with the Figure-2 lower envelope (Oracle DPM downstream).
    Oracle,
    /// Price with the threshold-ladder idle energy (Practical DPM
    /// downstream).
    Practical,
}

/// Eviction priority key: rounded penalty (as ordered bits), then furthest
/// next access first, then block id.
type Key = (u64, Reverse<u64>, BlockId);

/// The off-line power-aware greedy replacement policy.
///
/// Constructed from the trace it will replay (see the
/// [protocol](crate::policy)).
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{Opg, OpgDpm};
/// use pc_cache::{BlockCache, WritePolicy};
/// use pc_diskmodel::{DiskPowerSpec, PowerModel};
/// use pc_trace::{IoOp, Record, Trace};
/// use pc_units::{BlockId, BlockNo, DiskId, Joules, SimTime};
///
/// let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
/// let mut t = Trace::new(1);
/// for (i, b) in [1u64, 2, 3, 1, 2].into_iter().enumerate() {
///     t.push(Record::new(SimTime::from_secs(10 * i as u64), blk(b), IoOp::Read));
/// }
/// let power = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
/// let opg = Opg::new(&t, power, OpgDpm::Oracle, Joules::ZERO);
/// let mut cache = BlockCache::new(2, Box::new(opg), WritePolicy::WriteBack);
/// for r in &t {
///     cache.access_alloc(r, |_| false);
/// }
/// ```
pub struct Opg {
    index: OfflineIndex,
    disk_of: Vec<DiskId>,
    power: PowerModel,
    dpm: OpgDpm,
    epsilon: f64,
    cursor: usize,
    naive_eviction: bool,

    /// Future deterministic-miss times per disk (µs → multiplicity).
    det: FxHashMap<DiskId, BTreeMap<u64, u32>>,
    /// When each disk last serviced a (deterministic) miss, µs.
    last_active: FxHashMap<DiskId, u64>,
    /// Resident block → raw next-occurrence index (`NO_NEXT` = never) and
    /// cache slot.
    resident_next: FxHashMap<BlockId, (u32, Slot)>,
    /// Resident blocks by next-access time, per disk (only blocks with a
    /// future access).
    by_x: FxHashMap<DiskId, BTreeMap<u64, BTreeSet<BlockId>>>,
    /// Eviction order.
    heap: BTreeSet<Key>,
    /// Block → its current heap key.
    key_of: FxHashMap<BlockId, Key>,
    /// Reusable buffer for blocks collected during re-pricing, so the
    /// per-record path performs no heap allocation in steady state.
    scratch: Vec<BlockId>,
}

impl std::fmt::Debug for Opg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Opg")
            .field("dpm", &self.dpm)
            .field("epsilon", &self.epsilon)
            .field("cursor", &self.cursor)
            .field("resident", &self.resident_next.len())
            .finish()
    }
}

impl Opg {
    /// Builds OPG for a trace, a power model, the downstream DPM scheme
    /// and the ε rounding threshold (`Joules::ZERO` = pure OPG; large ε
    /// recovers Belady).
    ///
    /// # Panics
    ///
    /// Panics if ε is negative.
    #[must_use]
    pub fn new(trace: &Trace, power: PowerModel, dpm: OpgDpm, epsilon: Joules) -> Self {
        assert!(epsilon.as_joules() >= 0.0, "epsilon must be non-negative");
        let index = OfflineIndex::build(trace);
        // One entry per expanded (per-block) access, like the index.
        let disk_of: Vec<DiskId> = trace
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.block.disk(), r.blocks as usize))
            .collect();
        let mut det: FxHashMap<DiskId, BTreeMap<u64, u32>> = FxHashMap::default();
        for (i, disk) in disk_of.iter().enumerate() {
            if index.is_first(i) {
                *det.entry(*disk)
                    .or_default()
                    .entry(index.time_of(i).as_micros())
                    .or_insert(0) += 1;
            }
        }
        Opg {
            index,
            disk_of,
            power,
            dpm,
            epsilon: epsilon.as_joules(),
            cursor: 0,
            naive_eviction: false,
            det,
            last_active: FxHashMap::default(),
            resident_next: FxHashMap::default(),
            by_x: FxHashMap::default(),
            heap: BTreeSet::new(),
            key_of: FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Switches eviction to a full re-scan of resident blocks (O(n) per
    /// eviction). Exists to property-test the indexed implementation.
    #[must_use]
    pub fn with_naive_eviction(mut self) -> Self {
        self.naive_eviction = true;
        self
    }

    /// The idle-period energy function being priced against.
    fn idle_energy(&self, gap: SimDuration) -> f64 {
        match self.dpm {
            OpgDpm::Oracle => self.power.lower_envelope(gap).as_joules(),
            OpgDpm::Practical => self.power.practical_idle_energy(gap).as_joules(),
        }
    }

    /// Raw (un-rounded) penalty for a resident block of `disk` whose next
    /// access is at `x` µs.
    fn penalty_at(&self, disk: DiskId, x: u64) -> f64 {
        let det = self.det.get(&disk);
        if det.is_some_and(|m| m.contains_key(&x)) {
            // The disk is provably active at x anyway.
            return 0.0;
        }
        let floor = self.last_active.get(&disk).copied().unwrap_or(0);
        let leader = det
            .and_then(|m| m.range(..x).next_back().map(|(&t, _)| t))
            .map_or(floor, |l| l.max(floor));
        let leader = leader.min(x);
        let follower = det.and_then(|m| m.range(x + 1..).next().map(|(&t, _)| t));
        let dl = SimDuration::from_micros(x - leader);
        let pen = match follower {
            Some(f) => {
                let df = SimDuration::from_micros(f - x);
                let whole = SimDuration::from_micros(f - leader);
                self.idle_energy(dl) + self.idle_energy(df) - self.idle_energy(whole)
            }
            None => {
                // No future deterministic miss: waking the disk at x costs
                // the idle-period energy above the keep-sleeping floor.
                let standby = self.power.mode(self.power.standby()).power;
                self.idle_energy(dl) - (standby * dl).as_joules()
            }
        };
        pen.max(0.0)
    }

    /// The eviction key for a block given its raw next index.
    fn key_for(&self, block: BlockId, next: u32) -> Key {
        if next == NO_NEXT {
            // Never used again: zero penalty, infinite forward distance.
            return (rounded_bits(0.0, self.epsilon), Reverse(u64::MAX), block);
        }
        let x = self.index.time_of(next as usize).as_micros();
        let pen = self.penalty_at(block.disk(), x);
        (rounded_bits(pen, self.epsilon), Reverse(x), block)
    }

    /// (Re)inserts a block into the eviction order.
    fn reprice(&mut self, block: BlockId) {
        let (next, _) = self.resident_next[&block];
        let key = self.key_for(block, next);
        if let Some(old) = self.key_of.insert(block, key) {
            self.heap.remove(&old);
        }
        self.heap.insert(key);
    }

    /// Re-prices every resident block of `disk` whose next access lies
    /// strictly inside `(lo, hi)`.
    fn reprice_range(&mut self, disk: DiskId, lo: u64, hi: u64) {
        let Some(xs) = self.by_x.get(&disk) else {
            return;
        };
        // `reprice` needs `&mut self`, so the affected set is staged in
        // the persistent scratch buffer instead of a fresh Vec per call.
        let mut affected = std::mem::take(&mut self.scratch);
        affected.extend(
            xs.range((Excluded(lo), Excluded(hi)))
                .flat_map(|(_, blocks)| blocks.iter().copied()),
        );
        for &b in &affected {
            self.reprice(b);
        }
        affected.clear();
        self.scratch = affected;
    }

    /// Registers a future deterministic miss at `x` µs on `disk`,
    /// re-pricing the blocks in the gap it splits.
    fn add_det(&mut self, disk: DiskId, x: u64) {
        let map = self.det.entry(disk).or_default();
        let count = map.entry(x).or_insert(0);
        *count += 1;
        if *count > 1 {
            return; // structurally unchanged
        }
        let lo = map
            .range(..x)
            .next_back()
            .map(|(&t, _)| t)
            .unwrap_or_else(|| self.last_active.get(&disk).copied().unwrap_or(0));
        let hi = map.range(x + 1..).next().map_or(u64::MAX, |(&t, _)| t);
        self.reprice_range(disk, lo, hi);
        // Blocks at exactly x become free to evict (penalty 0).
        if let Some(blocks) = self.by_x.get(&disk).and_then(|m| m.get(&x)) {
            let mut at_x = std::mem::take(&mut self.scratch);
            at_x.extend(blocks.iter().copied());
            for &b in &at_x {
                self.reprice(b);
            }
            at_x.clear();
            self.scratch = at_x;
        }
    }

    /// Removes a block from all structures, returning its next index and
    /// cache slot.
    fn forget(&mut self, block: BlockId) -> (u32, Slot) {
        let (next, slot) = self
            .resident_next
            .remove(&block)
            .expect("block was resident");
        if let Some(key) = self.key_of.remove(&block) {
            self.heap.remove(&key);
        }
        if next != NO_NEXT {
            let x = self.index.time_of(next as usize).as_micros();
            let disk = block.disk();
            if let Some(m) = self.by_x.get_mut(&disk) {
                if let Some(set) = m.get_mut(&x) {
                    set.remove(&block);
                    if set.is_empty() {
                        m.remove(&x);
                    }
                }
            }
        }
        (next, slot)
    }

    /// Naive victim selection: scan every resident block with fresh
    /// penalties (reference implementation).
    fn scan_victim(&self) -> BlockId {
        self.resident_next
            .iter()
            .map(|(&b, &(next, _))| (self.key_for(b, next), b))
            .min()
            .map(|(_, b)| b)
            .expect("no block to evict")
    }
}

/// Order-preserving bit encoding of a non-negative penalty after ε
/// rounding.
fn rounded_bits(penalty: f64, epsilon: f64) -> u64 {
    penalty.max(epsilon).to_bits()
}

impl ReplacementPolicy for Opg {
    fn name(&self) -> String {
        let dpm = match self.dpm {
            OpgDpm::Oracle => "oracle",
            OpgDpm::Practical => "practical",
        };
        format!("opg({dpm},eps={})", self.epsilon)
    }

    fn on_access(&mut self, slot: Option<Slot>, block: BlockId, time: SimTime) {
        assert!(
            self.cursor < self.index.len(),
            "access beyond the indexed trace"
        );
        let i = self.cursor;
        self.cursor += 1;
        let disk = self.disk_of[i];
        let t = time.as_micros();
        if let Some(slot) = slot {
            // The block's stored next access is this very one; advance it.
            let (old, _) = self.forget(block);
            debug_assert_eq!(old as usize, i, "hit must match the stored next use");
            let next = self.index.next_raw(i);
            self.resident_next.insert(block, (next, slot));
            if next != NO_NEXT {
                let x = self.index.time_of(next as usize).as_micros();
                self.by_x
                    .entry(disk)
                    .or_default()
                    .entry(x)
                    .or_default()
                    .insert(block);
            }
            self.reprice(block);
        } else {
            // A deterministic miss happens now: the disk is active at t.
            // Replacing "leader = det miss at t" with "leader = last
            // active at t" leaves all penalties unchanged, so no
            // re-pricing is needed.
            if let Some(map) = self.det.get_mut(&disk) {
                if let Some(count) = map.get_mut(&t) {
                    *count -= 1;
                    if *count == 0 {
                        map.remove(&t);
                    }
                }
            }
            let last = self.last_active.entry(disk).or_insert(0);
            *last = (*last).max(t);
        }
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, _time: SimTime) {
        let next = self.index.next_raw(self.cursor - 1);
        self.resident_next.insert(block, (next, slot));
        if next != NO_NEXT {
            let x = self.index.time_of(next as usize).as_micros();
            self.by_x
                .entry(block.disk())
                .or_default()
                .entry(x)
                .or_default()
                .insert(block);
        }
        self.reprice(block);
    }

    fn on_prefetch_insert(&mut self, _slot: Slot, _block: BlockId, _time: SimTime) {
        panic!("OPG is an off-line policy and does not support prefetching");
    }

    fn evict(&mut self) -> Slot {
        let victim = if self.naive_eviction {
            self.scan_victim()
        } else {
            self.heap.first().expect("no block to evict").2
        };
        let (next, slot) = self.forget(victim);
        if next != NO_NEXT {
            // The victim's next reference is now bound to miss.
            let x = self.index.time_of(next as usize).as_micros();
            self.add_det(victim.disk(), x);
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses};
    use crate::policy::{Belady, Lru};
    use crate::{BlockCache, WritePolicy};
    use pc_diskmodel::DiskPowerSpec;
    use pc_trace::{IoOp, Record};

    fn power() -> PowerModel {
        PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15())
    }

    /// A trace on `disks` disks from (seconds, disk, block) triples.
    fn trace_of(disks: u32, accesses: &[(u64, u32, u64)]) -> Trace {
        let mut t = Trace::new(disks);
        for &(s, d, b) in accesses {
            t.push(Record::new(SimTime::from_secs(s), blk(d, b), IoOp::Read));
        }
        t
    }

    fn opg(t: &Trace, eps: f64) -> Opg {
        Opg::new(t, power(), OpgDpm::Oracle, Joules::new(eps))
    }

    #[test]
    fn zero_penalty_for_never_reused_blocks() {
        // Two one-shot blocks and one reused block: OPG must evict the
        // one-shot blocks first despite the reused block's closer next use.
        let t = trace_of(1, &[(0, 0, 1), (1, 0, 2), (2, 0, 3), (3, 0, 9), (40, 0, 1)]);
        let mut cache = BlockCache::new(3, Box::new(opg(&t, 0.0)), WritePolicy::WriteBack);
        let mut evictions = Vec::new();
        for r in &t {
            if let Some(e) = cache.access_alloc(r, |_| false).evicted {
                evictions.push(e);
            }
        }
        // Block 1 (reused at t=40) survives; a one-shot block goes.
        assert_eq!(evictions.len(), 1);
        assert_ne!(evictions[0], blk(0, 1));
        assert!(cache.contains(blk(0, 1)));
    }

    #[test]
    fn large_epsilon_reproduces_belady_misses() {
        let accesses: Vec<(u64, u32, u64)> = (0..200u64)
            .map(|i| {
                let b = (i * 7 + i * i % 13) % 9;
                (i * 5, 0, b)
            })
            .collect();
        let t = trace_of(1, &accesses);
        let belady = count_misses(&t, 4, Box::new(Belady::new(&t)));
        let opg_inf = count_misses(&t, 4, Box::new(opg(&t, 1e18)));
        assert_eq!(belady, opg_inf);
    }

    #[test]
    fn indexed_and_naive_evictions_agree() {
        // Pseudo-random multi-disk trace; both eviction engines must pick
        // identical victims at every step.
        let mut state = 0x5EEDu64;
        let mut rand = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let accesses: Vec<(u64, u32, u64)> = (0..400)
            .map(|i| (i * 3 + rand(3), (rand(3)) as u32, rand(12)))
            .collect();
        let t = trace_of(3, &accesses);
        for eps in [0.0, 5.0, 1e18] {
            let mut fast = BlockCache::new(5, Box::new(opg(&t, eps)), WritePolicy::WriteBack);
            let mut slow = BlockCache::new(
                5,
                Box::new(opg(&t, eps).with_naive_eviction()),
                WritePolicy::WriteBack,
            );
            for r in &t {
                let a = fast.access_alloc(r, |_| false);
                let b = slow.access_alloc(r, |_| false);
                assert_eq!(a.hit, b.hit, "hit mismatch at {:?} eps {eps}", r.time);
                assert_eq!(
                    a.evicted, b.evicted,
                    "victim mismatch at {:?} eps {eps}",
                    r.time
                );
            }
        }
    }

    #[test]
    fn prefers_evicting_blocks_whose_disk_is_active_anyway() {
        // Disk 0 has a dense stream of deterministic (cold) misses: its
        // blocks are cheap to evict. Disk 1 is quiet: re-fetching its
        // block would wake it. OPG must sacrifice disk 0's blocks.
        let mut accesses = vec![(0u64, 1u32, 500u64)]; // quiet disk's block
        for i in 0..30u64 {
            accesses.push((1 + i * 20, 0, i)); // cold stream on disk 0
        }
        accesses.push((611, 1, 500)); // re-access to the quiet disk
        accesses.push((612, 0, 0)); // disk-0 reuse (hits if retained)
        accesses.sort();
        let t = trace_of(2, &accesses);
        let mut cache = BlockCache::new(2, Box::new(opg(&t, 0.0)), WritePolicy::WriteBack);
        let mut victims = Vec::new();
        for r in &t {
            if let Some(v) = cache.access_alloc(r, |_| false).evicted {
                victims.push(v);
            }
        }
        assert!(
            victims.iter().all(|v| v.disk() == DiskId::new(0)),
            "only disk-0 blocks may be sacrificed, got {victims:?}"
        );
    }

    #[test]
    fn penalty_is_nonnegative_and_zero_on_det_instants() {
        let t = trace_of(1, &[(0, 0, 1), (100, 0, 2), (200, 0, 3)]);
        let mut o = opg(&t, 0.0);
        // Fabricate: disk 0 has det misses at 100 s and 200 s (cold set).
        let d = DiskId::new(0);
        assert_eq!(o.penalty_at(d, SimTime::from_secs(100).as_micros()), 0.0);
        let p = o.penalty_at(d, SimTime::from_secs(150).as_micros());
        assert!(p >= 0.0);
        // A miss right between two close det misses is cheap; one far from
        // any activity is expensive.
        let far = {
            o.det.get_mut(&d).unwrap().clear();
            o.penalty_at(d, SimTime::from_secs(10_000).as_micros())
        };
        assert!(far > p, "far {far} vs between {p}");
    }

    #[test]
    fn miss_counts_stay_close_to_belady_for_pure_opg() {
        // OPG trades misses for energy, but the paper's results rely on
        // the miss overhead staying modest.
        let accesses: Vec<(u64, u32, u64)> = (0..300u64)
            .map(|i| (i * 4, (i % 2) as u32, (i * 13 + i % 7) % 20))
            .collect();
        let t = trace_of(2, &accesses);
        let belady = count_misses(&t, 6, Box::new(Belady::new(&t)));
        let opg_misses = count_misses(&t, 6, Box::new(opg(&t, 0.0)));
        let lru = count_misses(&t, 6, Box::new(Lru::new()));
        assert!(opg_misses >= belady);
        assert!(
            opg_misses <= lru.max(belady * 2),
            "opg {opg_misses} belady {belady} lru {lru}"
        );
    }

    #[test]
    fn practical_pricing_mode_runs() {
        let accesses: Vec<(u64, u32, u64)> =
            (0..100u64).map(|i| (i * 7, 0, (i * 3) % 15)).collect();
        let t = trace_of(1, &accesses);
        let o = Opg::new(&t, power(), OpgDpm::Practical, Joules::ZERO);
        let misses = count_misses(&t, 4, Box::new(o));
        assert!(misses > 0);
    }

    #[test]
    fn name_reflects_configuration() {
        let t = trace_of(1, &[(0, 0, 1)]);
        assert!(opg(&t, 0.0).name().contains("oracle"));
        assert!(Opg::new(&t, power(), OpgDpm::Practical, Joules::ZERO)
            .name()
            .contains("practical"));
    }
}
