//! OPG — the off-line power-aware greedy algorithm (paper §3.2).
//!
//! OPG evicts the resident block whose re-fetch would cost the least
//! *energy*, not the one with the furthest reuse. The cost model rests on
//! **deterministic misses**: accesses that are bound to miss no matter
//! what the policy does from here on (initially the cold misses; every
//! eviction adds the victim's next reference). A disk must be active at
//! each of its deterministic-miss instants, so evicting block `b` — whose
//! next access `x` would otherwise be a hit — splits one known idle period
//! of `b`'s disk in two:
//!
//! ```text
//! leader l ········· x ········· follower f        (all on b's disk)
//! penalty(b) = E(x−l) + E(f−x) − E(f−l)  ≥ 0
//! ```
//!
//! where `E` is the idle-period energy function of the underlying power
//! management — the Figure-2 lower envelope for Oracle DPM, or the
//! threshold-ladder energy for Practical DPM. Sub-additivity of `E` makes
//! the penalty non-negative.
//!
//! Penalties below a threshold ε are rounded up to ε and ties evict the
//! largest forward distance, so ε→∞ degenerates to Belady's MIN and ε=0
//! is the pure greedy (paper §3.2's knob subsuming both).
//!
//! # Implementation notes
//!
//! The deterministic-miss structure makes updates *local*: adding a
//! deterministic miss at time `t` on disk `d` only re-prices resident
//! blocks whose next access falls inside the gap that contained `t`; and
//! servicing a miss at `t` replaces "leader = det-miss at `t`" with
//! "leader = disk last active at `t`", leaving every penalty unchanged.
//!
//! All state lives in dense arrays — no maps or trees on the per-access
//! path. Every deterministic-miss or next-access instant is a trace access
//! time, so each disk gets a *position space*: its accesses in trace order,
//! with equal-time runs collapsed onto a canonical position
//! (`canon`/`pos_of`). Deterministic-miss multiplicities and resident
//! next-access buckets are per-position arrays, with a hierarchical bitset
//! ([`DenseBits`]) per disk giving predecessor/successor instants in
//! O(log₆₄ n) word steps. Resident blocks are slot-indexed (`Slot` is
//! dense): per-slot parallel arrays hold the block, its raw next index,
//! its eviction key, and intrusive bucket links. Victims come from an
//! index-tracking binary min-heap over slots ordered by
//! `(rounded penalty, −next-access-time, block)` — the same total order
//! the previous `BTreeSet` used, so victim selection is unchanged. A naive
//! re-scan eviction mode is kept for property-testing equivalence.

use std::cmp::Reverse;

use pc_diskmodel::PowerModel;
use pc_trace::Trace;
use pc_units::{BlockId, BlockNo, DiskId, Joules, SimDuration, SimTime};

use crate::bits::DenseBits;
use crate::offline::{OfflineIndex, NO_NEXT};
use crate::policy::ReplacementPolicy;
use crate::table::Slot;

/// Which disk power-management scheme OPG prices evictions against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpgDpm {
    /// Price with the Figure-2 lower envelope (Oracle DPM downstream).
    Oracle,
    /// Price with the threshold-ladder idle energy (Practical DPM
    /// downstream).
    Practical,
}

/// Eviction priority key: rounded penalty (as ordered bits), then furthest
/// next access first, then block id.
type Key = (u64, Reverse<u64>, BlockId);

/// Null link for slot arrays and bucket lists.
const NIL: u32 = u32::MAX;

/// The off-line power-aware greedy replacement policy.
///
/// Constructed from the trace it will replay (see the
/// [protocol](crate::policy)).
///
/// # Examples
///
/// ```
/// use pc_cache::policy::{Opg, OpgDpm};
/// use pc_cache::{BlockCache, WritePolicy};
/// use pc_diskmodel::{DiskPowerSpec, PowerModel};
/// use pc_trace::{IoOp, Record, Trace};
/// use pc_units::{BlockId, BlockNo, DiskId, Joules, SimTime};
///
/// let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
/// let mut t = Trace::new(1);
/// for (i, b) in [1u64, 2, 3, 1, 2].into_iter().enumerate() {
///     t.push(Record::new(SimTime::from_secs(10 * i as u64), blk(b), IoOp::Read));
/// }
/// let power = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
/// let opg = Opg::new(&t, power, OpgDpm::Oracle, Joules::ZERO);
/// let mut cache = BlockCache::new(2, Box::new(opg), WritePolicy::WriteBack);
/// for r in &t {
///     cache.access_alloc(r, |_| false);
/// }
/// ```
pub struct Opg {
    index: OfflineIndex,
    disk_of: Vec<DiskId>,
    power: PowerModel,
    dpm: OpgDpm,
    epsilon: f64,
    cursor: usize,
    naive_eviction: bool,

    /// Access index → position within its disk's access list.
    pos_of: Vec<u32>,
    /// Per disk: arrival time (µs) of each position (non-decreasing).
    disk_times: Vec<Vec<u64>>,
    /// Per disk: canonical position (the first with the same time) of each
    /// position, so distinct canonical positions carry distinct times.
    canon: Vec<Vec<u32>>,

    /// Per disk: future deterministic-miss multiplicity per canonical
    /// position.
    det_count: Vec<Vec<u32>>,
    /// Per disk: canonical positions with `det_count > 0`.
    det_bits: Vec<DenseBits>,
    /// When each disk last serviced a (deterministic) miss, µs.
    last_active: Vec<u64>,

    /// Per disk: canonical positions holding ≥ 1 resident block's next
    /// access.
    res_bits: Vec<DenseBits>,
    /// Per disk: head slot of each canonical position's resident bucket.
    res_head: Vec<Vec<u32>>,

    /// Slot → block occupying it (valid while resident).
    slot_block: Vec<BlockId>,
    /// Slot → raw next-occurrence index (`NO_NEXT` = never).
    slot_next: Vec<u32>,
    /// Slot → its position in `heap` (`NIL` = not resident).
    heap_pos: Vec<u32>,
    /// Intrusive links of the per-position resident buckets.
    bucket_prev: Vec<u32>,
    bucket_next: Vec<u32>,

    /// 4-ary min-heap of `(key, slot)` entries. Keys are stored inline so
    /// a sift comparison reads contiguous heap entries instead of
    /// indirecting through a slot-indexed side array; the wider fan-out
    /// halves the depth at the same comparison count. Unique keys (they
    /// embed the `BlockId`) make the root identical to the old
    /// `BTreeSet` minimum, so victim selection is unchanged.
    heap: Vec<(Key, u32)>,
    /// Reusable buffer for slots collected during re-pricing, so the
    /// per-record path performs no heap allocation in steady state.
    scratch: Vec<u32>,
}

impl std::fmt::Debug for Opg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Opg")
            .field("dpm", &self.dpm)
            .field("epsilon", &self.epsilon)
            .field("cursor", &self.cursor)
            .field("resident", &self.heap.len())
            .finish()
    }
}

impl Opg {
    /// Builds OPG for a trace, a power model, the downstream DPM scheme
    /// and the ε rounding threshold (`Joules::ZERO` = pure OPG; large ε
    /// recovers Belady).
    ///
    /// # Panics
    ///
    /// Panics if ε is negative.
    #[must_use]
    pub fn new(trace: &Trace, power: PowerModel, dpm: OpgDpm, epsilon: Joules) -> Self {
        assert!(epsilon.as_joules() >= 0.0, "epsilon must be non-negative");
        let index = OfflineIndex::build(trace);
        // One entry per expanded (per-block) access, like the index.
        let disk_of: Vec<DiskId> = trace
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.block.disk(), r.blocks as usize))
            .collect();
        let disks = trace.disk_count() as usize;
        let mut pos_of = Vec::with_capacity(disk_of.len());
        let mut disk_times: Vec<Vec<u64>> = vec![Vec::new(); disks];
        let mut canon: Vec<Vec<u32>> = vec![Vec::new(); disks];
        for (i, d) in disk_of.iter().enumerate() {
            let di = d.as_usize();
            let t = index.time_of(i).as_micros();
            let pos = disk_times[di].len() as u32;
            let cp = match disk_times[di].last() {
                Some(&prev) if prev == t => canon[di][pos as usize - 1],
                _ => pos,
            };
            disk_times[di].push(t);
            canon[di].push(cp);
            pos_of.push(pos);
        }
        let mut det_count: Vec<Vec<u32>> = disk_times.iter().map(|v| vec![0; v.len()]).collect();
        let mut det_bits: Vec<DenseBits> =
            disk_times.iter().map(|v| DenseBits::new(v.len())).collect();
        for (i, d) in disk_of.iter().enumerate() {
            if index.is_first(i) {
                let di = d.as_usize();
                let cp = canon[di][pos_of[i] as usize] as usize;
                det_count[di][cp] += 1;
                det_bits[di].set(cp);
            }
        }
        let res_bits = disk_times.iter().map(|v| DenseBits::new(v.len())).collect();
        let res_head = disk_times.iter().map(|v| vec![NIL; v.len()]).collect();
        Opg {
            index,
            disk_of,
            power,
            dpm,
            epsilon: epsilon.as_joules(),
            cursor: 0,
            naive_eviction: false,
            pos_of,
            disk_times,
            canon,
            det_count,
            det_bits,
            last_active: vec![0; disks],
            res_bits,
            res_head,
            slot_block: Vec::new(),
            slot_next: Vec::new(),
            heap_pos: Vec::new(),
            bucket_prev: Vec::new(),
            bucket_next: Vec::new(),
            heap: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Switches eviction to a full re-scan of resident blocks (O(n) per
    /// eviction). Exists to property-test the indexed implementation.
    #[must_use]
    pub fn with_naive_eviction(mut self) -> Self {
        self.naive_eviction = true;
        self
    }

    /// Grows the slot-parallel arrays to cover `slot`.
    fn ensure_slot(&mut self, slot: usize) {
        if slot >= self.slot_block.len() {
            let n = slot + 1;
            let dummy = BlockId::new(DiskId::new(0), BlockNo::new(0));
            self.slot_block.resize(n, dummy);
            self.slot_next.resize(n, NO_NEXT);
            self.heap_pos.resize(n, NIL);
            self.bucket_prev.resize(n, NIL);
            self.bucket_next.resize(n, NIL);
        }
    }

    /// The idle-period energy function being priced against.
    fn idle_energy(&self, gap: SimDuration) -> f64 {
        match self.dpm {
            OpgDpm::Oracle => self.power.lower_envelope(gap).as_joules(),
            OpgDpm::Practical => self.power.practical_idle_energy(gap).as_joules(),
        }
    }

    /// Ladder/mode-scanning variant of [`idle_energy`](Self::idle_energy),
    /// for the pricing-table micro-benchmarks.
    fn idle_energy_scan(&self, gap: SimDuration) -> f64 {
        match self.dpm {
            OpgDpm::Oracle => self.power.lower_envelope_scan(gap).as_joules(),
            OpgDpm::Practical => self.power.practical_idle_energy_scan(gap).as_joules(),
        }
    }

    /// Raw (un-rounded) penalty for a resident block of disk `d` whose
    /// next access sits at canonical position `cp`.
    #[inline]
    fn penalty_at_pos(&self, d: usize, cp: u32) -> f64 {
        let cp = cp as usize;
        if self.det_count[d][cp] > 0 {
            // The disk is provably active at x anyway.
            return 0.0;
        }
        let times = &self.disk_times[d];
        let x = times[cp];
        let floor = self.last_active[d];
        let leader = self.det_bits[d]
            .last_set_before(cp)
            .map_or(floor, |p| times[p].max(floor));
        let leader = leader.min(x);
        let follower = self.det_bits[d]
            .first_set_at_or_after(cp + 1)
            .map(|p| times[p]);
        self.penalty_from(x, leader, follower, false)
    }

    /// The leader/follower penalty arithmetic shared by the position-space
    /// hot path and the arbitrary-time probes.
    fn penalty_from(&self, x: u64, leader: u64, follower: Option<u64>, scan: bool) -> f64 {
        let e = |gap| {
            if scan {
                self.idle_energy_scan(gap)
            } else {
                self.idle_energy(gap)
            }
        };
        let dl = SimDuration::from_micros(x - leader);
        let pen = match follower {
            Some(f) => {
                let df = SimDuration::from_micros(f - x);
                let whole = SimDuration::from_micros(f - leader);
                e(dl) + e(df) - e(whole)
            }
            None => {
                // No future deterministic miss: waking the disk at x costs
                // the idle-period energy above the keep-sleeping floor.
                let standby = self.power.mode(self.power.standby()).power;
                e(dl) - (standby * dl).as_joules()
            }
        };
        pen.max(0.0)
    }

    /// Penalty for a hypothetical re-fetch of `disk` at an arbitrary time
    /// `x` µs (not necessarily an access instant). Exposed for tests and
    /// the pricing micro-benchmarks; the replay hot path uses
    /// [`penalty_at_pos`](Self::penalty_at_pos).
    #[doc(hidden)]
    #[must_use]
    pub fn penalty_probe(&self, disk: DiskId, x: u64) -> f64 {
        self.probe(disk, x, false)
    }

    /// [`penalty_probe`](Self::penalty_probe) priced through the
    /// mode/ladder scans instead of the precomputed tables (bit-identical
    /// by construction; exists to benchmark the difference).
    #[doc(hidden)]
    #[must_use]
    pub fn penalty_probe_scan(&self, disk: DiskId, x: u64) -> f64 {
        self.probe(disk, x, true)
    }

    fn probe(&self, disk: DiskId, x: u64, scan: bool) -> f64 {
        let d = disk.as_usize();
        let times = &self.disk_times[d];
        let at = times.partition_point(|&t| t < x);
        if at < times.len() && times[at] == x && self.det_count[d][at] > 0 {
            // `at` is the first position with time x, i.e. the canonical
            // position of the instant — the disk is active at x anyway.
            return 0.0;
        }
        let floor = self.last_active[d];
        let leader = self.det_bits[d]
            .last_set_before(at)
            .map_or(floor, |p| times[p].max(floor));
        let leader = leader.min(x);
        let after = times.partition_point(|&t| t <= x);
        let follower = self.det_bits[d]
            .first_set_at_or_after(after)
            .map(|p| times[p]);
        self.penalty_from(x, leader, follower, scan)
    }

    /// The eviction key for a block given its raw next index.
    #[inline]
    fn key_for(&self, block: BlockId, next: u32) -> Key {
        if next == NO_NEXT {
            // Never used again: zero penalty, infinite forward distance.
            return (rounded_bits(0.0, self.epsilon), Reverse(u64::MAX), block);
        }
        let d = block.disk().as_usize();
        let pos = self.pos_of[next as usize] as usize;
        let cp = self.canon[d][pos];
        let x = self.disk_times[d][pos];
        let pen = self.penalty_at_pos(d, cp);
        (rounded_bits(pen, self.epsilon), Reverse(x), block)
    }

    /// Recomputes a resident slot's key and restores heap order.
    fn reprice(&mut self, slot: u32) {
        let key = self.key_for(
            self.slot_block[slot as usize],
            self.slot_next[slot as usize],
        );
        if self.heap_pos[slot as usize] == NIL {
            self.heap.push((key, slot));
            self.heap_pos[slot as usize] = (self.heap.len() - 1) as u32;
            self.sift_up(self.heap.len() - 1);
        } else {
            let at = self.heap_pos[slot as usize] as usize;
            self.heap[at].0 = key;
            let at = self.sift_up(at);
            self.sift_down(at);
        }
    }

    /// Heap fan-out. Four children sit in one or two cache lines of the
    /// entry array, so a descent level costs about one memory touch.
    const ARITY: usize = 4;

    fn sift_up(&mut self, mut i: usize) -> usize {
        // Hole technique: carry the moving entry in a register and shift
        // displaced parents down with one write per level.
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if entry.0 < self.heap[parent].0 {
                self.heap[i] = self.heap[parent];
                self.heap_pos[self.heap[i].1 as usize] = i as u32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
        self.heap_pos[entry.1 as usize] = i as u32;
        i
    }

    fn sift_down(&mut self, mut i: usize) {
        let entry = self.heap[i];
        loop {
            let first = Self::ARITY * i + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + Self::ARITY).min(self.heap.len());
            let mut child = first;
            for c in first + 1..last {
                if self.heap[c].0 < self.heap[child].0 {
                    child = c;
                }
            }
            if self.heap[child].0 < entry.0 {
                self.heap[i] = self.heap[child];
                self.heap_pos[self.heap[i].1 as usize] = i as u32;
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
        self.heap_pos[entry.1 as usize] = i as u32;
    }

    fn heap_remove(&mut self, slot: u32) {
        let at = self.heap_pos[slot as usize] as usize;
        debug_assert_ne!(at as u32, NIL, "slot was resident");
        self.heap_pos[slot as usize] = NIL;
        self.heap.swap_remove(at);
        if at < self.heap.len() {
            self.heap_pos[self.heap[at].1 as usize] = at as u32;
            let at = self.sift_up(at);
            self.sift_down(at);
        }
    }

    /// Links `slot` into the resident bucket of its next-access instant.
    #[inline]
    fn bucket_insert(&mut self, slot: u32, next: u32) {
        let (d, cp) = self.instant_of(next);
        let head = self.res_head[d][cp as usize];
        self.bucket_prev[slot as usize] = NIL;
        self.bucket_next[slot as usize] = head;
        if head == NIL {
            self.res_bits[d].set(cp as usize);
        } else {
            self.bucket_prev[head as usize] = slot;
        }
        self.res_head[d][cp as usize] = slot;
    }

    /// Unlinks `slot` from the resident bucket of its next-access instant.
    #[inline]
    fn bucket_remove(&mut self, slot: u32, next: u32) {
        let (d, cp) = self.instant_of(next);
        let prev = self.bucket_prev[slot as usize];
        let after = self.bucket_next[slot as usize];
        if prev == NIL {
            self.res_head[d][cp as usize] = after;
            if after == NIL {
                self.res_bits[d].clear(cp as usize);
            }
        } else {
            self.bucket_next[prev as usize] = after;
        }
        if after != NIL {
            self.bucket_prev[after as usize] = prev;
        }
    }

    /// The (disk, canonical position) of a raw access index.
    #[inline]
    fn instant_of(&self, next: u32) -> (usize, u32) {
        let d = self.disk_of[next as usize].as_usize();
        (d, self.canon[d][self.pos_of[next as usize] as usize])
    }

    /// Registers a future deterministic miss at canonical position `cp` of
    /// disk `d`, re-pricing the blocks in the gap it splits.
    fn add_det(&mut self, d: usize, cp: u32) {
        let count = &mut self.det_count[d][cp as usize];
        *count += 1;
        if *count > 1 {
            return; // structurally unchanged
        }
        self.det_bits[d].set(cp as usize);
        let times = &self.disk_times[d];
        let lo = self.det_bits[d]
            .last_set_before(cp as usize)
            .map_or(self.last_active[d], |p| times[p]);
        let hi = self.det_bits[d]
            .first_set_at_or_after(cp as usize + 1)
            .map_or(u64::MAX, |p| times[p]);
        self.reprice_range(d, lo, hi);
        // Blocks at exactly x become free to evict (penalty 0).
        if self.res_bits[d].get(cp as usize) {
            let mut at_x = std::mem::take(&mut self.scratch);
            let mut slot = self.res_head[d][cp as usize];
            while slot != NIL {
                at_x.push(slot);
                slot = self.bucket_next[slot as usize];
            }
            for &s in &at_x {
                self.reprice(s);
            }
            at_x.clear();
            self.scratch = at_x;
        }
    }

    /// Re-prices every resident block of disk `d` whose next access lies
    /// strictly inside `(lo, hi)` (times in µs).
    fn reprice_range(&mut self, d: usize, lo: u64, hi: u64) {
        let times = &self.disk_times[d];
        let start = times.partition_point(|&t| t <= lo);
        let end = times.partition_point(|&t| t < hi);
        // `reprice` needs `&mut self`, so the affected set is staged in
        // the persistent scratch buffer instead of a fresh Vec per call.
        let mut affected = std::mem::take(&mut self.scratch);
        let mut p = self.res_bits[d].first_set_at_or_after(start);
        while let Some(pos) = p {
            if pos >= end {
                break;
            }
            let mut slot = self.res_head[d][pos];
            while slot != NIL {
                affected.push(slot);
                slot = self.bucket_next[slot as usize];
            }
            p = self.res_bits[d].first_set_at_or_after(pos + 1);
        }
        for &s in &affected {
            self.reprice(s);
        }
        affected.clear();
        self.scratch = affected;
    }

    /// Removes a resident slot from all structures, returning its raw next
    /// index.
    fn forget(&mut self, slot: u32) -> u32 {
        let next = self.slot_next[slot as usize];
        self.heap_remove(slot);
        if next != NO_NEXT {
            self.bucket_remove(slot, next);
        }
        next
    }

    /// Naive victim selection: scan every resident block with fresh
    /// penalties (reference implementation).
    fn scan_victim(&self) -> u32 {
        self.heap
            .iter()
            .map(|&(_, s)| {
                (
                    self.key_for(self.slot_block[s as usize], self.slot_next[s as usize]),
                    s,
                )
            })
            .min()
            .map(|(_, s)| s)
            .expect("no block to evict")
    }

    /// Drops every future deterministic miss of `disk` (test scaffolding
    /// for probing penalties against an artificially quiet disk).
    #[cfg(test)]
    fn clear_det(&mut self, disk: DiskId) {
        let d = disk.as_usize();
        while let Some(p) = self.det_bits[d].first_set_at_or_after(0) {
            self.det_bits[d].clear(p);
            self.det_count[d][p] = 0;
        }
    }
}

/// Order-preserving bit encoding of a non-negative penalty after ε
/// rounding.
fn rounded_bits(penalty: f64, epsilon: f64) -> u64 {
    penalty.max(epsilon).to_bits()
}

impl ReplacementPolicy for Opg {
    fn name(&self) -> String {
        let dpm = match self.dpm {
            OpgDpm::Oracle => "oracle",
            OpgDpm::Practical => "practical",
        };
        format!("opg({dpm},eps={})", self.epsilon)
    }

    fn on_access(&mut self, slot: Option<Slot>, block: BlockId, time: SimTime) {
        assert!(
            self.cursor < self.index.len(),
            "access beyond the indexed trace"
        );
        let i = self.cursor;
        self.cursor += 1;
        let t = time.as_micros();
        if let Some(slot) = slot {
            // The block's stored next access is this very one; advance it.
            let s = slot.index() as u32;
            let old = self.slot_next[s as usize];
            debug_assert_eq!(old as usize, i, "hit must match the stored next use");
            debug_assert_eq!(self.slot_block[s as usize], block);
            self.bucket_remove(s, old);
            let next = self.index.next_raw(i);
            self.slot_next[s as usize] = next;
            if next != NO_NEXT {
                self.bucket_insert(s, next);
            }
            self.reprice(s);
        } else {
            // A deterministic miss happens now: the disk is active at t.
            // Replacing "leader = det miss at t" with "leader = last
            // active at t" leaves all penalties unchanged, so no
            // re-pricing is needed.
            let d = self.disk_of[i].as_usize();
            let cp = self.canon[d][self.pos_of[i] as usize] as usize;
            let count = &mut self.det_count[d][cp];
            if *count > 0 {
                *count -= 1;
                if *count == 0 {
                    self.det_bits[d].clear(cp);
                }
            }
            self.last_active[d] = self.last_active[d].max(t);
        }
    }

    fn on_insert(&mut self, slot: Slot, block: BlockId, _time: SimTime) {
        let s = slot.index() as u32;
        self.ensure_slot(slot.index());
        self.slot_block[s as usize] = block;
        let next = self.index.next_raw(self.cursor - 1);
        self.slot_next[s as usize] = next;
        if next != NO_NEXT {
            self.bucket_insert(s, next);
        }
        self.reprice(s);
    }

    fn on_prefetch_insert(&mut self, _slot: Slot, _block: BlockId, _time: SimTime) {
        panic!("OPG is an off-line policy and does not support prefetching");
    }

    fn evict(&mut self) -> Slot {
        let victim = if self.naive_eviction {
            self.scan_victim()
        } else {
            self.heap.first().expect("no block to evict").1
        };
        let next = self.forget(victim);
        if next != NO_NEXT {
            // The victim's next reference is now bound to miss.
            let (d, cp) = self.instant_of(next);
            self.add_det(d, cp);
        }
        Slot::new(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testutil::{blk, count_misses};
    use crate::policy::{Belady, Lru};
    use crate::{BlockCache, WritePolicy};
    use pc_diskmodel::DiskPowerSpec;
    use pc_trace::{IoOp, Record};

    fn power() -> PowerModel {
        PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15())
    }

    /// A trace on `disks` disks from (seconds, disk, block) triples.
    fn trace_of(disks: u32, accesses: &[(u64, u32, u64)]) -> Trace {
        let mut t = Trace::new(disks);
        for &(s, d, b) in accesses {
            t.push(Record::new(SimTime::from_secs(s), blk(d, b), IoOp::Read));
        }
        t
    }

    fn opg(t: &Trace, eps: f64) -> Opg {
        Opg::new(t, power(), OpgDpm::Oracle, Joules::new(eps))
    }

    #[test]
    fn zero_penalty_for_never_reused_blocks() {
        // Two one-shot blocks and one reused block: OPG must evict the
        // one-shot blocks first despite the reused block's closer next use.
        let t = trace_of(1, &[(0, 0, 1), (1, 0, 2), (2, 0, 3), (3, 0, 9), (40, 0, 1)]);
        let mut cache = BlockCache::new(3, Box::new(opg(&t, 0.0)), WritePolicy::WriteBack);
        let mut evictions = Vec::new();
        for r in &t {
            if let Some(e) = cache.access_alloc(r, |_| false).evicted {
                evictions.push(e);
            }
        }
        // Block 1 (reused at t=40) survives; a one-shot block goes.
        assert_eq!(evictions.len(), 1);
        assert_ne!(evictions[0], blk(0, 1));
        assert!(cache.contains(blk(0, 1)));
    }

    #[test]
    fn large_epsilon_reproduces_belady_misses() {
        let accesses: Vec<(u64, u32, u64)> = (0..200u64)
            .map(|i| {
                let b = (i * 7 + i * i % 13) % 9;
                (i * 5, 0, b)
            })
            .collect();
        let t = trace_of(1, &accesses);
        let belady = count_misses(&t, 4, Box::new(Belady::new(&t)));
        let opg_inf = count_misses(&t, 4, Box::new(opg(&t, 1e18)));
        assert_eq!(belady, opg_inf);
    }

    #[test]
    fn indexed_and_naive_evictions_agree() {
        // Pseudo-random multi-disk trace; both eviction engines must pick
        // identical victims at every step.
        let mut state = 0x5EEDu64;
        let mut rand = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let accesses: Vec<(u64, u32, u64)> = (0..400)
            .map(|i| (i * 3 + rand(3), (rand(3)) as u32, rand(12)))
            .collect();
        let t = trace_of(3, &accesses);
        for eps in [0.0, 5.0, 1e18] {
            let mut fast = BlockCache::new(5, Box::new(opg(&t, eps)), WritePolicy::WriteBack);
            let mut slow = BlockCache::new(
                5,
                Box::new(opg(&t, eps).with_naive_eviction()),
                WritePolicy::WriteBack,
            );
            for r in &t {
                let a = fast.access_alloc(r, |_| false);
                let b = slow.access_alloc(r, |_| false);
                assert_eq!(a.hit, b.hit, "hit mismatch at {:?} eps {eps}", r.time);
                assert_eq!(
                    a.evicted, b.evicted,
                    "victim mismatch at {:?} eps {eps}",
                    r.time
                );
            }
        }
    }

    #[test]
    fn indexed_and_naive_evictions_agree_on_large_practical_trace() {
        // Satellite hardening for the slot/bitset rebuild: ≥ 2k accesses
        // over ≥ 8 disks, same-instant collisions (integer-second arrival
        // clock with multiple records per tick), and both pricing modes.
        let mut state = 0xBEEF5EEDu64;
        let mut rand = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let mut accesses: Vec<(u64, u32, u64)> = (0..2500)
            .map(|i| (i / 2 + rand(2), (rand(8)) as u32, rand(60)))
            .collect();
        accesses.sort_unstable();
        let t = trace_of(8, &accesses);
        for dpm in [OpgDpm::Oracle, OpgDpm::Practical] {
            for eps in [0.0, 5.0] {
                let build = || Opg::new(&t, power(), dpm, Joules::new(eps));
                let mut fast = BlockCache::new(24, Box::new(build()), WritePolicy::WriteBack);
                let mut slow = BlockCache::new(
                    24,
                    Box::new(build().with_naive_eviction()),
                    WritePolicy::WriteBack,
                );
                for r in &t {
                    let a = fast.access_alloc(r, |_| false);
                    let b = slow.access_alloc(r, |_| false);
                    assert_eq!(a.hit, b.hit, "hit mismatch at {:?} {dpm:?}/{eps}", r.time);
                    assert_eq!(
                        a.evicted, b.evicted,
                        "victim mismatch at {:?} {dpm:?}/{eps}",
                        r.time
                    );
                }
            }
        }
    }

    #[test]
    fn prefers_evicting_blocks_whose_disk_is_active_anyway() {
        // Disk 0 has a dense stream of deterministic (cold) misses: its
        // blocks are cheap to evict. Disk 1 is quiet: re-fetching its
        // block would wake it. OPG must sacrifice disk 0's blocks.
        let mut accesses = vec![(0u64, 1u32, 500u64)]; // quiet disk's block
        for i in 0..30u64 {
            accesses.push((1 + i * 20, 0, i)); // cold stream on disk 0
        }
        accesses.push((611, 1, 500)); // re-access to the quiet disk
        accesses.push((612, 0, 0)); // disk-0 reuse (hits if retained)
        accesses.sort();
        let t = trace_of(2, &accesses);
        let mut cache = BlockCache::new(2, Box::new(opg(&t, 0.0)), WritePolicy::WriteBack);
        let mut victims = Vec::new();
        for r in &t {
            if let Some(v) = cache.access_alloc(r, |_| false).evicted {
                victims.push(v);
            }
        }
        assert!(
            victims.iter().all(|v| v.disk() == DiskId::new(0)),
            "only disk-0 blocks may be sacrificed, got {victims:?}"
        );
    }

    #[test]
    fn penalty_is_nonnegative_and_zero_on_det_instants() {
        let t = trace_of(1, &[(0, 0, 1), (100, 0, 2), (200, 0, 3)]);
        let mut o = opg(&t, 0.0);
        // Disk 0 has det misses at 0, 100 and 200 s (the cold set).
        let d = DiskId::new(0);
        assert_eq!(o.penalty_probe(d, SimTime::from_secs(100).as_micros()), 0.0);
        let p = o.penalty_probe(d, SimTime::from_secs(150).as_micros());
        assert!(p >= 0.0);
        // A miss right between two close det misses is cheap; one far from
        // any activity is expensive.
        let far = {
            o.clear_det(d);
            o.penalty_probe(d, SimTime::from_secs(10_000).as_micros())
        };
        assert!(far > p, "far {far} vs between {p}");
    }

    #[test]
    fn probe_agrees_with_scan_pricing_bit_for_bit() {
        let accesses: Vec<(u64, u32, u64)> = (0..64u64).map(|i| (i * 9, 0, i % 11)).collect();
        let t = trace_of(1, &accesses);
        let d = DiskId::new(0);
        for dpm in [OpgDpm::Oracle, OpgDpm::Practical] {
            let o = Opg::new(&t, power(), dpm, Joules::ZERO);
            for x in (0..600).map(|s| SimTime::from_millis(s * 997).as_micros()) {
                assert_eq!(
                    o.penalty_probe(d, x).to_bits(),
                    o.penalty_probe_scan(d, x).to_bits(),
                    "{dpm:?} probe at {x} µs"
                );
            }
        }
    }

    #[test]
    fn miss_counts_stay_close_to_belady_for_pure_opg() {
        // OPG trades misses for energy, but the paper's results rely on
        // the miss overhead staying modest.
        let accesses: Vec<(u64, u32, u64)> = (0..300u64)
            .map(|i| (i * 4, (i % 2) as u32, (i * 13 + i % 7) % 20))
            .collect();
        let t = trace_of(2, &accesses);
        let belady = count_misses(&t, 6, Box::new(Belady::new(&t)));
        let opg_misses = count_misses(&t, 6, Box::new(opg(&t, 0.0)));
        let lru = count_misses(&t, 6, Box::new(Lru::new()));
        assert!(opg_misses >= belady);
        assert!(
            opg_misses <= lru.max(belady * 2),
            "opg {opg_misses} belady {belady} lru {lru}"
        );
    }

    #[test]
    fn practical_pricing_mode_runs() {
        let accesses: Vec<(u64, u32, u64)> =
            (0..100u64).map(|i| (i * 7, 0, (i * 3) % 15)).collect();
        let t = trace_of(1, &accesses);
        let o = Opg::new(&t, power(), OpgDpm::Practical, Joules::ZERO);
        let misses = count_misses(&t, 4, Box::new(o));
        assert!(misses > 0);
    }

    #[test]
    fn name_reflects_configuration() {
        let t = trace_of(1, &[(0, 0, 1)]);
        assert!(opg(&t, 0.0).name().contains("oracle"));
        assert!(Opg::new(&t, power(), OpgDpm::Practical, Joules::ZERO)
            .name()
            .contains("practical"));
    }
}
