//! Pre-computed future knowledge for off-line policies (Belady, OPG).

use rustc_hash::FxHashMap;

use pc_trace::Trace;
use pc_units::{BlockId, SimTime};

/// Index position of an access within a trace; `NO_NEXT` marks "never
/// accessed again".
pub(crate) const NO_NEXT: u32 = u32::MAX;

/// Future-knowledge tables for one trace: per-access next-occurrence links
/// and arrival times.
///
/// Off-line policies are constructed from the same [`Trace`] they will be
/// driven with and track their position by counting
/// [`on_access`](crate::ReplacementPolicy::on_access) calls. Multi-block
/// records expand into one access per block, in block order — exactly the
/// order [`BlockCache`](crate::BlockCache) drives its policy in.
///
/// # Examples
///
/// ```
/// use pc_cache::OfflineIndex;
/// use pc_trace::{IoOp, Record, Trace};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
/// let mut t = Trace::new(1);
/// t.push(Record::new(SimTime::from_secs(0), blk(1), IoOp::Read));
/// t.push(Record::new(SimTime::from_secs(1), blk(2), IoOp::Read));
/// t.push(Record::new(SimTime::from_secs(2), blk(1), IoOp::Read));
/// let idx = OfflineIndex::build(&t);
/// assert_eq!(idx.next_occurrence(0), Some(2)); // block 1 recurs at index 2
/// assert_eq!(idx.next_occurrence(1), None); // block 2 never recurs
/// ```
#[derive(Debug, Clone)]
pub struct OfflineIndex {
    /// `next[i]` = index of the next access to the same block, or
    /// `NO_NEXT`.
    next: Vec<u32>,
    /// Arrival time of each access.
    times: Vec<SimTime>,
    /// Whether access `i` is the block's first appearance (cold).
    first: Vec<bool>,
}

impl OfflineIndex {
    /// Builds the index in O(total blocks) over the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace expands to more than `u32::MAX − 1` accesses.
    #[must_use]
    pub fn build(trace: &Trace) -> Self {
        let n: u64 = trace.iter().map(|r| r.blocks).sum();
        assert!(n < u64::from(NO_NEXT), "trace too long for offline index");
        let n = n as usize;
        let mut next = vec![NO_NEXT; n];
        let mut times = Vec::with_capacity(n);
        let mut first = vec![false; n];
        let mut last_seen: FxHashMap<BlockId, u32> = FxHashMap::default();
        let mut i = 0u32;
        for r in trace {
            for offset in 0..r.blocks {
                let block = pc_units::BlockId::new(
                    r.block.disk(),
                    pc_units::BlockNo::new(r.block.block().number() + offset),
                );
                times.push(r.time);
                match last_seen.insert(block, i) {
                    Some(prev) => next[prev as usize] = i,
                    None => first[i as usize] = true,
                }
                i += 1;
            }
        }
        OfflineIndex { next, times, first }
    }

    /// Number of accesses indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// Returns `true` for an empty trace.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// The index of the next access to the same block as access `i`, if
    /// any.
    #[must_use]
    pub fn next_occurrence(&self, i: usize) -> Option<usize> {
        match self.next[i] {
            NO_NEXT => None,
            j => Some(j as usize),
        }
    }

    /// Raw next link (`NO_NEXT` sentinel form), for hot paths.
    #[must_use]
    pub(crate) fn next_raw(&self, i: usize) -> u32 {
        self.next[i]
    }

    /// Arrival time of access `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn time_of(&self, i: usize) -> SimTime {
        self.times[i]
    }

    /// Whether access `i` is the block's first (cold) appearance.
    #[must_use]
    pub fn is_first(&self, i: usize) -> bool {
        self.first[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_trace::{IoOp, Record};
    use pc_units::{BlockNo, DiskId};

    fn trace_of(blocks: &[u64]) -> Trace {
        let mut t = Trace::new(1);
        for (i, &b) in blocks.iter().enumerate() {
            t.push(Record::new(
                SimTime::from_secs(i as u64),
                BlockId::new(DiskId::new(0), BlockNo::new(b)),
                IoOp::Read,
            ));
        }
        t
    }

    #[test]
    fn links_repeated_blocks() {
        let idx = OfflineIndex::build(&trace_of(&[5, 6, 5, 6, 5]));
        assert_eq!(idx.next_occurrence(0), Some(2));
        assert_eq!(idx.next_occurrence(2), Some(4));
        assert_eq!(idx.next_occurrence(4), None);
        assert_eq!(idx.next_occurrence(1), Some(3));
    }

    #[test]
    fn flags_first_appearances() {
        let idx = OfflineIndex::build(&trace_of(&[1, 2, 1, 3]));
        assert!(idx.is_first(0));
        assert!(idx.is_first(1));
        assert!(!idx.is_first(2));
        assert!(idx.is_first(3));
    }

    #[test]
    fn records_times() {
        let idx = OfflineIndex::build(&trace_of(&[1, 2]));
        assert_eq!(idx.time_of(1), SimTime::from_secs(1));
        assert_eq!(idx.len(), 2);
    }
}
