//! The storage block cache.

use std::collections::BTreeMap;

use pc_trace::{IoOp, Record};
use pc_units::{BlockId, BlockNo, DiskId};

use crate::policy::ReplacementPolicy;
use crate::table::{BlockTable, Slot};
use crate::wtdu::LogSpace;
use crate::{AccessOutcome, AccessResult, Effect, WritePolicy};

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Evictions that had to write back a dirty block.
    pub dirty_evictions: u64,
    /// Disk reads requested (read misses).
    pub disk_reads: u64,
    /// Disk writes requested (write-through, write-backs, flushes).
    pub disk_writes: u64,
    /// Log-device writes requested (WTDU).
    pub log_writes: u64,
    /// Disk reads issued speculatively by sequential prefetching
    /// (included in `disk_reads`).
    pub prefetch_reads: u64,
}

impl CacheStats {
    /// Misses (`accesses − hits`).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit ratio in `[0, 1]`; zero for an untouched cache.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Folds another counter snapshot into this one (saturating), for
    /// aggregating independent shards of a partitioned cache. Snapshots
    /// are plain `Copy` values, so a shard thread can hand one across a
    /// channel and the aggregator merges them without locks.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses = self.accesses.saturating_add(other.accesses);
        self.hits = self.hits.saturating_add(other.hits);
        self.reads = self.reads.saturating_add(other.reads);
        self.writes = self.writes.saturating_add(other.writes);
        self.evictions = self.evictions.saturating_add(other.evictions);
        self.dirty_evictions = self.dirty_evictions.saturating_add(other.dirty_evictions);
        self.disk_reads = self.disk_reads.saturating_add(other.disk_reads);
        self.disk_writes = self.disk_writes.saturating_add(other.disk_writes);
        self.log_writes = self.log_writes.saturating_add(other.log_writes);
        self.prefetch_reads = self.prefetch_reads.saturating_add(other.prefetch_reads);
    }
}

/// Per-slot block flags.
#[derive(Debug, Clone, Copy, Default)]
struct BlockState {
    dirty: bool,
    logged: bool,
}

/// Per-disk index of flagged blocks: block number → cache slot, ordered
/// by block number so flushes are deterministic (and roughly sequential
/// on the platter).
type DiskSet = BTreeMap<u64, u32>;

/// A storage (second-level) block cache with pluggable replacement and
/// write policies.
///
/// Residency is tracked by a [`BlockTable`] that interns each admitted
/// block at a dense [`Slot`]; per-block flags live in a flat slot-indexed
/// vector and the replacement policy is driven entirely in slot space, so
/// a hit costs exactly one hash lookup.
///
/// The cache performs **write allocation** under every write policy, so
/// the resident set — and therefore the read-miss stream — depends only on
/// the replacement policy; the write policy changes *when and where* dirty
/// data reaches persistent storage, which is exactly the comparison of the
/// paper's §6.
///
/// # Examples
///
/// ```
/// use pc_cache::policy::Lru;
/// use pc_cache::{BlockCache, Effect, WritePolicy};
/// use pc_trace::{IoOp, Record};
/// use pc_units::{BlockId, BlockNo, DiskId, SimTime};
///
/// let mut cache = BlockCache::new(8, Box::new(Lru::new()), WritePolicy::WriteThrough);
/// let block = BlockId::new(DiskId::new(0), BlockNo::new(3));
/// let mut effects = Vec::new();
/// cache.access(&Record::new(SimTime::ZERO, block, IoOp::Write), |_| false, &mut effects);
/// // Write-through: the write reaches the disk immediately.
/// assert!(effects.contains(&Effect::WriteDisk(block)));
/// ```
pub struct BlockCache {
    capacity: usize,
    policy: Box<dyn ReplacementPolicy>,
    write_policy: WritePolicy,
    /// Block ↔ slot interning for the resident set.
    table: BlockTable,
    /// Flags per cache slot.
    state: Vec<BlockState>,
    /// Dirty blocks, indexed by disk.
    dirty: Vec<DiskSet>,
    /// Logged (WTDU) blocks, indexed by disk.
    logged: Vec<DiskSet>,
    log: LogSpace,
    stats: CacheStats,
    /// Monotone counter used as the "value" written to the WTDU log so
    /// recovery tests can distinguish write generations.
    write_seq: u64,
    /// Sequential read-ahead depth (0 = disabled).
    prefetch_depth: u64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy.name())
            .field("write_policy", &self.write_policy.name())
            .field("resident", &self.table.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BlockCache {
    /// Creates a cache holding up to `capacity` blocks.
    ///
    /// Use `usize::MAX` for the paper's infinite-cache baseline.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(
        capacity: usize,
        policy: Box<dyn ReplacementPolicy>,
        write_policy: WritePolicy,
    ) -> Self {
        assert!(capacity > 0, "cache needs at least one block");
        BlockCache {
            capacity,
            policy,
            write_policy,
            table: BlockTable::new(),
            state: Vec::new(),
            dirty: Vec::new(),
            logged: Vec::new(),
            log: LogSpace::new(64), // grown on demand in `append_log`
            stats: CacheStats::default(),
            write_seq: 0,
            prefetch_depth: 0,
        }
    }

    /// Enables sequential read-ahead: every read miss additionally
    /// fetches up to `depth` following blocks of the same disk while it
    /// is active (the paper's "consider prefetching" future work).
    ///
    /// Prefetching requires an on-line replacement policy — the off-line
    /// policies (Belady, OPG) panic on prefetch insertion, since their
    /// future-knowledge cursor is indexed by client accesses.
    #[must_use]
    pub fn with_prefetch_depth(mut self, depth: u64) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// The replacement policy's name.
    #[must_use]
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// The policy's adaptive-selection gauges, when it has any (the
    /// meta-policy; fixed policies return `None`).
    #[must_use]
    pub fn meta_stats(&self) -> Option<crate::MetaStats> {
        self.policy.meta_stats()
    }

    /// The write policy in effect.
    #[must_use]
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Counters collected so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of blocks currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if no block is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Returns `true` if `block` is resident.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        self.table.lookup(block).is_some()
    }

    /// The dense slot `block` currently occupies, if resident. Slot
    /// indices are stable for the block's whole residency and recycled
    /// only after eviction, so side structures (like the server's
    /// payload slab) can address per-block storage as `slot × stride`.
    #[must_use]
    pub fn slot_of(&self, block: BlockId) -> Option<Slot> {
        self.table.lookup(block)
    }

    /// Exclusive upper bound on every slot index ever issued; sizing
    /// slot-parallel side tables to this length makes any [`Slot`] from
    /// [`slot_of`](Self::slot_of) safe to index with.
    #[must_use]
    pub fn slot_bound(&self) -> usize {
        self.table.slot_bound()
    }

    /// The WTDU log contents (for persistence inspection and recovery
    /// tests).
    #[must_use]
    pub fn log(&self) -> &LogSpace {
        &self.log
    }

    /// Interns a freshly admitted block, priming its per-slot state.
    fn admit(&mut self, block: BlockId) -> Slot {
        let slot = self.table.intern(block);
        if slot.index() >= self.state.len() {
            self.state.resize(slot.index() + 1, BlockState::default());
        } else {
            self.state[slot.index()] = BlockState::default();
        }
        slot
    }

    /// The per-disk map of `sets` for `disk`, grown on demand.
    fn disk_set(sets: &mut Vec<DiskSet>, disk: DiskId) -> &mut DiskSet {
        let i = disk.as_usize();
        if i >= sets.len() {
            sets.resize_with(i + 1, DiskSet::new);
        }
        &mut sets[i]
    }

    /// Processes one access (of `record.blocks` consecutive blocks).
    /// `sleeping(d)` must report whether disk `d` currently rests below
    /// full speed; the power-aware write policies use it to decide
    /// between logging, deferring and flushing.
    ///
    /// **Scratch-buffer contract:** `effects` is a caller-owned scratch
    /// buffer. The cache clears it on entry and fills it with the
    /// disk-side work this access triggers, in service order; the caller
    /// reads it after the call and reuses the same buffer for the next
    /// access, so the steady-state hit path performs no heap allocation.
    /// In the returned [`AccessOutcome`], `hit` means *every* block of
    /// the request was resident, and only the missing blocks are fetched.
    pub fn access<F: Fn(DiskId) -> bool>(
        &mut self,
        record: &Record,
        sleeping: F,
        effects: &mut Vec<Effect>,
    ) -> AccessOutcome {
        effects.clear();
        let disk = record.block.disk();
        self.stats.accesses += 1;
        match record.op {
            IoOp::Read => self.stats.reads += 1,
            IoOp::Write => self.stats.writes += 1,
        }
        // Disk power state is sampled once per request: the request's own
        // effects are serviced together, so mid-request wake-ups are not
        // observable by the cache anyway.
        let asleep = sleeping(disk);

        let mut evicted = None;
        let mut all_hit = true;
        let mut activated = false;
        let mut read_missed = false;

        for offset in 0..record.blocks {
            let block = BlockId::new(disk, BlockNo::new(record.block.block().number() + offset));
            let found = self.table.lookup(block);
            self.policy.on_access(found, block, record.time);
            let slot = match found {
                Some(slot) => slot,
                None => {
                    all_hit = false;
                    // A read miss must fetch from the disk, waking it if
                    // needed; both power-aware write policies piggyback
                    // their deferred work on that activation.
                    if record.op == IoOp::Read {
                        if asleep && !activated {
                            self.on_activation(disk, effects);
                            activated = true;
                        }
                        effects.push(Effect::ReadDisk(block));
                        self.stats.disk_reads += 1;
                        read_missed = true;
                    }
                    if self.table.len() >= self.capacity {
                        let victim = self.evict_one(effects);
                        if evicted.is_none() {
                            evicted = Some(victim);
                        }
                    }
                    let slot = self.admit(block);
                    self.policy.on_insert(slot, block, record.time);
                    slot
                }
            };
            if record.op == IoOp::Write {
                self.handle_write(slot, block, asleep, effects);
            }
        }

        if all_hit {
            self.stats.hits += 1;
        }
        if read_missed && self.prefetch_depth > 0 {
            let last = BlockId::new(
                disk,
                BlockNo::new(record.block.block().number() + record.blocks.saturating_sub(1)),
            );
            self.prefetch_after(last, record.time, effects);
        }

        AccessOutcome {
            hit: all_hit,
            evicted,
        }
    }

    /// Allocating convenience wrapper around [`BlockCache::access`]:
    /// returns the effects in an owned [`AccessResult`]. Handy in tests
    /// and examples; simulation loops should thread a reusable scratch
    /// buffer through `access` instead.
    pub fn access_alloc<F: Fn(DiskId) -> bool>(
        &mut self,
        record: &Record,
        sleeping: F,
    ) -> AccessResult {
        let mut effects = Vec::new();
        let outcome = self.access(record, sleeping, &mut effects);
        AccessResult {
            hit: outcome.hit,
            evicted: outcome.evicted,
            effects,
        }
    }

    /// Sequential read-ahead behind a demand read miss: the disk is
    /// active anyway, so the following blocks ride the same activation.
    fn prefetch_after(
        &mut self,
        block: BlockId,
        time: pc_units::SimTime,
        effects: &mut Vec<Effect>,
    ) {
        for i in 1..=self.prefetch_depth {
            let next = BlockId::new(block.disk(), BlockNo::new(block.block().number() + i));
            if self.table.lookup(next).is_some() {
                continue;
            }
            if self.table.len() >= self.capacity {
                self.evict_one(effects);
            }
            let slot = self.admit(next);
            self.policy.on_prefetch_insert(slot, next, time);
            effects.push(Effect::ReadDisk(next));
            self.stats.disk_reads += 1;
            self.stats.prefetch_reads += 1;
        }
    }

    /// Evicts one block, emitting a write-back if it was dirty. Under
    /// WTDU, evicting a logged block (whose newest value exists only in
    /// the cache and the log) triggers a full region flush first so the
    /// data disk ends up current — see the module docs of
    /// [`wtdu`](crate::wtdu).
    fn evict_one(&mut self, effects: &mut Vec<Effect>) -> BlockId {
        let slot = self.policy.evict();
        let victim = self.table.block_of(slot);
        let state = self.state[slot.index()];
        self.table.release(slot);
        self.stats.evictions += 1;
        if state.logged {
            // Must not lose the newest value: flush the whole region (the
            // victim's newest value is still in the cache… its slot was
            // just released, so emit its write explicitly first).
            effects.push(Effect::WriteDisk(victim));
            self.stats.disk_writes += 1;
            self.unlog(victim);
            let disk = victim.disk();
            self.on_activation(disk, effects);
        }
        if state.dirty {
            self.stats.dirty_evictions += 1;
            self.stats.disk_writes += 1;
            effects.push(Effect::WriteDisk(victim));
            if let Some(set) = self.dirty.get_mut(victim.disk().as_usize()) {
                set.remove(&victim.block().number());
            }
        }
        victim
    }

    /// Applies the write policy for a write access to the resident block
    /// at `slot`. `asleep` is the target disk's power state at the
    /// request's arrival.
    fn handle_write(
        &mut self,
        slot: Slot,
        block: BlockId,
        asleep: bool,
        effects: &mut Vec<Effect>,
    ) {
        self.write_seq += 1;
        let disk = block.disk();
        match self.write_policy {
            WritePolicy::WriteThrough => {
                effects.push(Effect::WriteDisk(block));
                self.stats.disk_writes += 1;
            }
            WritePolicy::WriteBack => {
                self.mark_dirty(slot, block);
            }
            WritePolicy::Wbeu { dirty_limit } => {
                self.mark_dirty(slot, block);
                let count = self.dirty.get(disk.as_usize()).map_or(0, DiskSet::len);
                if count > dirty_limit {
                    // Forced flush: wake the disk to drain its dirty set.
                    self.flush_dirty(disk, effects);
                }
            }
            WritePolicy::Wtdu => {
                if asleep {
                    self.append_log(slot, block, effects);
                } else {
                    // A direct write must not leave a *pending* log entry
                    // for this block behind: a crash would replay the
                    // stale logged value over the newer direct write.
                    // Retire the region first (the disk is active, so the
                    // flush is cheap and matches the paper's
                    // flush-on-activation protocol).
                    if self.state[slot.index()].logged {
                        self.flush_logged(disk, effects);
                    }
                    effects.push(Effect::WriteDisk(block));
                    self.stats.disk_writes += 1;
                }
            }
        }
    }

    /// Power-aware deferred work on a disk's transition to active:
    /// WBEU flushes dirty blocks, WTDU replays logged blocks and retires
    /// the log region.
    fn on_activation(&mut self, disk: DiskId, effects: &mut Vec<Effect>) {
        match self.write_policy {
            WritePolicy::Wbeu { .. } => self.flush_dirty(disk, effects),
            WritePolicy::Wtdu => self.flush_logged(disk, effects),
            WritePolicy::WriteThrough | WritePolicy::WriteBack => {}
        }
    }

    fn mark_dirty(&mut self, slot: Slot, block: BlockId) {
        let state = &mut self.state[slot.index()];
        if !state.dirty {
            state.dirty = true;
            Self::disk_set(&mut self.dirty, block.disk())
                .insert(block.block().number(), slot.index() as u32);
        }
    }

    fn flush_dirty(&mut self, disk: DiskId, effects: &mut Vec<Effect>) {
        let Some(set) = self.dirty.get_mut(disk.as_usize()) else {
            return;
        };
        for (no, slot) in std::mem::take(set) {
            effects.push(Effect::WriteDisk(BlockId::new(disk, BlockNo::new(no))));
            self.stats.disk_writes += 1;
            self.state[slot as usize].dirty = false;
        }
    }

    fn append_log(&mut self, slot: Slot, block: BlockId, effects: &mut Vec<Effect>) {
        let disk = block.disk();
        while self.log.disk_count() <= disk.index() {
            self.log = grow_log(&self.log);
        }
        self.log.append(disk, block.block(), self.write_seq);
        self.stats.log_writes += 1;
        effects.push(Effect::WriteLog(block));
        let state = &mut self.state[slot.index()];
        if !state.logged {
            state.logged = true;
            Self::disk_set(&mut self.logged, disk)
                .insert(block.block().number(), slot.index() as u32);
        }
    }

    fn flush_logged(&mut self, disk: DiskId, effects: &mut Vec<Effect>) {
        if let Some(set) = self.logged.get_mut(disk.as_usize()) {
            for (no, slot) in std::mem::take(set) {
                effects.push(Effect::WriteDisk(BlockId::new(disk, BlockNo::new(no))));
                self.stats.disk_writes += 1;
                self.state[slot as usize].logged = false;
            }
        }
        if disk.index() < self.log.disk_count() {
            self.log.flush_region(disk);
        }
    }

    fn unlog(&mut self, block: BlockId) {
        if let Some(set) = self.logged.get_mut(block.disk().as_usize()) {
            set.remove(&block.block().number());
        }
    }
}

/// Rebuilds a [`LogSpace`] with twice the regions, preserving content.
/// (Log regions are per-disk; disk counts are small, so this happens at
/// most a handful of times per simulation.)
fn grow_log(old: &LogSpace) -> LogSpace {
    let mut bigger = LogSpace::new(old.disk_count() * 2);
    // Replay the recoverable state; flushed generations need no copy for
    // correctness (recovery ignores them).
    for (block, value) in old.recover() {
        bigger.append(block.disk(), block.block(), value);
    }
    bigger
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;
    use pc_units::SimTime;

    fn blk(disk: u32, no: u64) -> BlockId {
        BlockId::new(DiskId::new(disk), BlockNo::new(no))
    }

    fn rec(ms: u64, block: BlockId, op: IoOp) -> Record {
        Record::new(SimTime::from_millis(ms), block, op)
    }

    fn cache(capacity: usize, wp: WritePolicy) -> BlockCache {
        BlockCache::new(capacity, Box::new(Lru::new()), wp)
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = cache(2, WritePolicy::WriteBack);
        let b = blk(0, 1);
        let r1 = c.access_alloc(&rec(0, b, IoOp::Read), |_| false);
        assert!(!r1.hit);
        assert_eq!(r1.effects, vec![Effect::ReadDisk(b)]);
        let r2 = c.access_alloc(&rec(1, b, IoOp::Read), |_| false);
        assert!(r2.hit);
        assert!(r2.effects.is_empty());
        assert_eq!(c.stats().hit_ratio(), 0.5);
    }

    #[test]
    fn lru_eviction_writes_back_dirty_blocks() {
        let mut c = cache(2, WritePolicy::WriteBack);
        c.access_alloc(&rec(0, blk(0, 1), IoOp::Write), |_| false);
        c.access_alloc(&rec(1, blk(0, 2), IoOp::Read), |_| false);
        let r = c.access_alloc(&rec(2, blk(0, 3), IoOp::Read), |_| false);
        assert_eq!(r.evicted, Some(blk(0, 1)));
        assert!(r.effects.contains(&Effect::WriteDisk(blk(0, 1))));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_through_never_holds_dirty_blocks() {
        let mut c = cache(2, WritePolicy::WriteThrough);
        c.access_alloc(&rec(0, blk(0, 1), IoOp::Write), |_| false);
        c.access_alloc(&rec(1, blk(0, 2), IoOp::Read), |_| false);
        let r = c.access_alloc(&rec(2, blk(0, 3), IoOp::Read), |_| false);
        // Eviction of block 1 emits no write-back: it was written through.
        assert_eq!(
            r.effects
                .iter()
                .filter(|e| matches!(e, Effect::WriteDisk(_)))
                .count(),
            0
        );
        assert_eq!(c.stats().disk_writes, 1);
    }

    #[test]
    fn write_miss_allocates_without_reading() {
        let mut c = cache(4, WritePolicy::WriteBack);
        let r = c.access_alloc(&rec(0, blk(0, 9), IoOp::Write), |_| false);
        assert!(!r.hit);
        assert!(r.effects.is_empty(), "no fetch, no write-through");
        assert!(c.contains(blk(0, 9)));
    }

    #[test]
    fn wbeu_flushes_on_read_activation() {
        let mut c = cache(8, WritePolicy::Wbeu { dirty_limit: 100 });
        c.access_alloc(&rec(0, blk(1, 1), IoOp::Write), |_| false);
        c.access_alloc(&rec(1, blk(1, 2), IoOp::Write), |_| false);
        // Read miss to disk 1 while it sleeps: flush rides the spin-up.
        let r = c.access_alloc(&rec(2, blk(1, 3), IoOp::Read), |_| true);
        let writes: Vec<_> = r
            .effects
            .iter()
            .filter(|e| matches!(e, Effect::WriteDisk(_)))
            .collect();
        assert_eq!(writes.len(), 2);
        // Flush precedes the read in the emitted order only if the read is
        // last; we emit activation work first.
        assert_eq!(*r.effects.last().unwrap(), Effect::ReadDisk(blk(1, 3)));
    }

    #[test]
    fn wbeu_respects_dirty_limit() {
        let mut c = cache(16, WritePolicy::Wbeu { dirty_limit: 2 });
        c.access_alloc(&rec(0, blk(0, 1), IoOp::Write), |_| true);
        c.access_alloc(&rec(1, blk(0, 2), IoOp::Write), |_| true);
        let r = c.access_alloc(&rec(2, blk(0, 3), IoOp::Write), |_| true);
        // Third dirty block exceeds the limit of 2: forced flush of all 3.
        assert_eq!(
            r.effects
                .iter()
                .filter(|e| matches!(e, Effect::WriteDisk(_)))
                .count(),
            3
        );
    }

    #[test]
    fn wtdu_logs_writes_to_sleeping_disks() {
        let mut c = cache(8, WritePolicy::Wtdu);
        let b = blk(2, 7);
        let r = c.access_alloc(&rec(0, b, IoOp::Write), |_| true);
        assert_eq!(r.effects, vec![Effect::WriteLog(b)]);
        assert_eq!(c.stats().log_writes, 1);
        assert_eq!(c.log().pending(DiskId::new(2)), 1);
        // Crash now: recovery must replay the block.
        assert_eq!(c.log().recover().len(), 1);
    }

    #[test]
    fn wtdu_writes_directly_to_active_disks() {
        let mut c = cache(8, WritePolicy::Wtdu);
        let b = blk(2, 7);
        let r = c.access_alloc(&rec(0, b, IoOp::Write), |_| false);
        assert_eq!(r.effects, vec![Effect::WriteDisk(b)]);
        assert_eq!(c.stats().log_writes, 0);
    }

    #[test]
    fn wtdu_activation_flushes_and_retires_log() {
        let mut c = cache(8, WritePolicy::Wtdu);
        c.access_alloc(&rec(0, blk(2, 7), IoOp::Write), |_| true);
        c.access_alloc(&rec(1, blk(2, 8), IoOp::Write), |_| true);
        // Disk 2 wakes for a read: logged blocks flushed, region retired.
        let r = c.access_alloc(&rec(2, blk(2, 9), IoOp::Read), |_| true);
        assert_eq!(
            r.effects
                .iter()
                .filter(|e| matches!(e, Effect::WriteDisk(_)))
                .count(),
            2
        );
        assert_eq!(c.log().pending(DiskId::new(2)), 0);
        assert!(c.log().recover().is_empty(), "clean after flush");
    }

    #[test]
    fn wtdu_direct_write_supersedes_logged_value() {
        let mut c = cache(8, WritePolicy::Wtdu);
        let b = blk(0, 1);
        c.access_alloc(&rec(0, b, IoOp::Write), |_| true); // logged
        c.access_alloc(&rec(1, b, IoOp::Write), |_| false); // direct while active
                                                            // Waking the disk later flushes nothing (the logged mark cleared).
        let r = c.access_alloc(&rec(2, blk(0, 2), IoOp::Read), |_| true);
        assert_eq!(
            r.effects
                .iter()
                .filter(|e| matches!(e, Effect::WriteDisk(_)))
                .count(),
            0
        );
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = cache(3, WritePolicy::WriteBack);
        for i in 0..50 {
            c.access_alloc(&rec(i, blk(0, i % 7), IoOp::Read), |_| false);
            assert!(c.len() <= 3);
        }
        assert_eq!(c.stats().accesses, 50);
    }

    #[test]
    fn slot_space_stays_dense_under_churn() {
        // A bounded cache must recycle slots rather than grow its state
        // vector without bound: after heavy churn the per-slot state is
        // still no larger than the capacity.
        let mut c = cache(4, WritePolicy::WriteBack);
        for i in 0..1_000u64 {
            c.access_alloc(&rec(i, blk(0, i % 97), IoOp::Read), |_| false);
        }
        assert!(c.len() <= 4);
        assert!(
            c.state.len() <= 4,
            "state grew to {} slots for a 4-block cache",
            c.state.len()
        );
    }

    #[test]
    fn infinite_cache_only_cold_misses() {
        let mut c = BlockCache::new(usize::MAX, Box::new(Lru::new()), WritePolicy::WriteBack);
        let mut misses = 0;
        for i in 0..100u64 {
            let b = blk(0, i % 10);
            if !c.access_alloc(&rec(i, b, IoOp::Read), |_| false).hit {
                misses += 1;
            }
        }
        assert_eq!(misses, 10);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn log_grows_past_64_disks() {
        let mut c = cache(8, WritePolicy::Wtdu);
        let b = blk(200, 1);
        let r = c.access_alloc(&rec(0, b, IoOp::Write), |_| true);
        assert_eq!(r.effects, vec![Effect::WriteLog(b)]);
        assert_eq!(c.log().pending(DiskId::new(200)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_zero_capacity() {
        let _ = cache(0, WritePolicy::WriteBack);
    }

    #[test]
    fn prefetch_pulls_sequential_blocks() {
        let mut c = cache(8, WritePolicy::WriteBack).with_prefetch_depth(2);
        let r = c.access_alloc(&rec(0, blk(0, 10), IoOp::Read), |_| false);
        assert_eq!(
            r.effects,
            vec![
                Effect::ReadDisk(blk(0, 10)),
                Effect::ReadDisk(blk(0, 11)),
                Effect::ReadDisk(blk(0, 12)),
            ]
        );
        assert_eq!(c.stats().prefetch_reads, 2);
        // The prefetched blocks now hit without any disk work.
        assert!(
            c.access_alloc(&rec(1, blk(0, 11), IoOp::Read), |_| false)
                .hit
        );
        assert!(
            c.access_alloc(&rec(2, blk(0, 12), IoOp::Read), |_| false)
                .hit
        );
    }

    #[test]
    fn prefetch_skips_resident_blocks_and_respects_capacity() {
        let mut c = cache(2, WritePolicy::WriteBack).with_prefetch_depth(3);
        c.access_alloc(&rec(0, blk(0, 11), IoOp::Read), |_| false);
        let r = c.access_alloc(&rec(1, blk(0, 10), IoOp::Read), |_| false);
        // Block 11 is already resident; capacity 2 bounds the rest.
        assert!(c.len() <= 2);
        let reads = r
            .effects
            .iter()
            .filter(|e| matches!(e, Effect::ReadDisk(_)))
            .count();
        assert!(reads >= 2, "demand read plus at least one prefetch");
    }

    #[test]
    fn writes_do_not_trigger_prefetch() {
        let mut c = cache(8, WritePolicy::WriteBack).with_prefetch_depth(4);
        let r = c.access_alloc(&rec(0, blk(0, 5), IoOp::Write), |_| false);
        assert!(r.effects.is_empty());
        assert_eq!(c.stats().prefetch_reads, 0);
    }

    #[test]
    fn multi_block_requests_fetch_only_missing_blocks() {
        let mut c = cache(8, WritePolicy::WriteBack);
        // Warm block 11.
        c.access_alloc(&rec(0, blk(0, 11), IoOp::Read), |_| false);
        // A 4-block read 10..=13: blocks 10, 12, 13 miss; 11 hits.
        let mut r4 = rec(1, blk(0, 10), IoOp::Read);
        r4.blocks = 4;
        let res = c.access_alloc(&r4, |_| false);
        assert!(!res.hit, "partial hits count as a request miss");
        let fetched: Vec<u64> = res
            .effects
            .iter()
            .filter_map(|e| match e {
                Effect::ReadDisk(b) => Some(b.block().number()),
                _ => None,
            })
            .collect();
        assert_eq!(fetched, vec![10, 12, 13]);
        // The whole run now hits.
        let again = c.access_alloc(
            &Record {
                time: SimTime::from_millis(2),
                ..r4
            },
            |_| false,
        );
        assert!(again.hit);
        assert!(again.effects.is_empty());
    }

    #[test]
    fn multi_block_writes_persist_every_block() {
        let mut c = cache(8, WritePolicy::WriteThrough);
        let mut w = rec(0, blk(0, 20), IoOp::Write);
        w.blocks = 3;
        let res = c.access_alloc(&w, |_| false);
        let written: Vec<u64> = res
            .effects
            .iter()
            .filter_map(|e| match e {
                Effect::WriteDisk(b) => Some(b.block().number()),
                _ => None,
            })
            .collect();
        assert_eq!(written, vec![20, 21, 22]);
        assert_eq!(c.stats().disk_writes, 3);
        assert_eq!(c.stats().writes, 1, "one client request");
    }

    #[test]
    fn multi_block_belady_expansion_is_consistent() {
        // Offline policies must count per-block accesses exactly as the
        // cache drives them; a mismatch panics inside Belady.
        use crate::policy::Belady;
        let mut t = pc_trace::Trace::new(1);
        let mut r = rec(0, blk(0, 0), IoOp::Read);
        r.blocks = 3;
        t.push(r);
        t.push(rec(1, blk(0, 1), IoOp::Read)); // hits (inside the run)
        let mut r2 = rec(2, blk(0, 4), IoOp::Read);
        r2.blocks = 2;
        t.push(r2);
        let mut c = BlockCache::new(4, Box::new(Belady::new(&t)), WritePolicy::WriteBack);
        let mut hits = 0;
        for r in &t {
            if c.access_alloc(r, |_| false).hit {
                hits += 1;
            }
        }
        assert_eq!(hits, 1, "the single-block re-read hits");
    }

    #[test]
    #[should_panic(expected = "off-line policy")]
    fn prefetch_rejects_offline_policies() {
        use crate::policy::Belady;
        let mut t = pc_trace::Trace::new(1);
        t.push(rec(0, blk(0, 1), IoOp::Read));
        let mut c = BlockCache::new(4, Box::new(Belady::new(&t)), WritePolicy::WriteBack)
            .with_prefetch_depth(1);
        c.access_alloc(&rec(0, blk(0, 1), IoOp::Read), |_| false);
    }
}
