//! Exact energy-optimal replacement for tiny instances (paper §3.1).
//!
//! The paper proves Belady's MIN is not energy-optimal (Figure 3) and
//! refers to a polynomial dynamic program in a technical report for the
//! true optimum. This module provides an *exact* optimum by memoized
//! exhaustive search over `(position, cache contents, per-disk last
//! activity)` — exponential in general, perfectly fine for the worked
//! examples and for property-testing OPG, which is its role here.
//!
//! Energy model: every cache miss makes the block's disk active at the
//! miss instant; the energy of an idle period of length `g` between
//! consecutive activities is `idle_energy(g)` (caller-supplied — e.g. the
//! paper's Figure-3 two-mode threshold model via [`threshold_energy`], or
//! a [`PowerModel`](pc_diskmodel::PowerModel) envelope); each miss
//! additionally costs `service_energy`.
//!
//! # Examples
//!
//! ```
//! use pc_cache::optimal::{min_energy, threshold_energy};
//! use pc_trace::{IoOp, Record, Trace};
//! use pc_units::{BlockId, BlockNo, DiskId, Joules, SimDuration, SimTime, Watts};
//!
//! let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
//! let mut t = Trace::new(1);
//! for (s, b) in [(0u64, 1u64), (1, 2), (2, 1)] {
//!     t.push(Record::new(SimTime::from_secs(s), blk(b), IoOp::Read));
//! }
//! let e = threshold_energy(Watts::new(1.0), Watts::new(0.0), SimDuration::from_secs(10));
//! let best = min_energy(&t, 2, SimTime::from_secs(20), Joules::ZERO, &e);
//! assert_eq!(best.misses, 2); // both blocks fit: only cold misses
//! ```

use std::collections::HashMap;

use pc_trace::Trace;
use pc_units::{BlockId, Joules, SimDuration, SimTime, Watts};

/// Memoization table of the exact search: `(position, cache contents,
/// per-disk last activity)` → `(energy, misses)`.
type Memo = HashMap<(usize, Vec<BlockId>, Vec<u64>), (f64, u64)>;

/// Outcome of the exact search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalResult {
    /// Minimum achievable total disk energy.
    pub energy: Joules,
    /// Miss count of (one of) the minimum-energy schedules.
    pub misses: u64,
}

/// The Figure-3 idle-energy model: a 2-mode disk with instantaneous, free
/// transitions that spins down after `threshold` idle time.
pub fn threshold_energy(
    idle: Watts,
    low: Watts,
    threshold: SimDuration,
) -> impl Fn(SimDuration) -> Joules {
    move |gap: SimDuration| {
        let high = gap.min(threshold);
        let lowt = gap.saturating_sub(threshold);
        idle * high + low * lowt
    }
}

/// Energy of one disk's activity sequence under an idle-energy model:
/// `Σ idle_energy(gap between consecutive activities) + trailing gap to
/// the horizon + misses × service_energy`. The disk is assumed active at
/// time zero.
pub fn miss_sequence_energy<F: Fn(SimDuration) -> Joules>(
    activities: &[SimTime],
    end: SimTime,
    service_energy: Joules,
    idle_energy: &F,
) -> Joules {
    let mut energy = Joules::ZERO;
    let mut last = SimTime::ZERO;
    for &t in activities {
        energy += idle_energy(t.saturating_since(last));
        energy += service_energy;
        last = last.max(t);
    }
    energy += idle_energy(end.saturating_since(last));
    energy
}

/// Exact minimum disk energy over **all** demand-paging replacement
/// schedules for `trace` with a `capacity`-block cache, with the
/// simulation horizon at `end`.
///
/// Exponential in the worst case — intended for instances of at most a
/// couple dozen accesses.
///
/// # Panics
///
/// Panics if `capacity` is zero.
#[must_use]
pub fn min_energy<F: Fn(SimDuration) -> Joules>(
    trace: &Trace,
    capacity: usize,
    end: SimTime,
    service_energy: Joules,
    idle_energy: &F,
) -> OptimalResult {
    assert!(capacity > 0, "cache needs at least one block");
    let records: Vec<(SimTime, BlockId)> = trace.iter().map(|r| (r.time, r.block)).collect();
    let disks = trace.disk_count() as usize;
    let mut memo: Memo = HashMap::new();
    let (energy, misses) = search(
        0,
        &mut Vec::new(),
        &mut vec![0u64; disks],
        &records,
        capacity,
        end,
        service_energy.as_joules(),
        idle_energy,
        &mut memo,
    );
    OptimalResult {
        energy: Joules::new(energy),
        misses,
    }
}

#[allow(clippy::too_many_arguments)]
fn search<F: Fn(SimDuration) -> Joules>(
    i: usize,
    cache: &mut Vec<BlockId>,
    last_active: &mut Vec<u64>,
    records: &[(SimTime, BlockId)],
    capacity: usize,
    end: SimTime,
    service_energy: f64,
    idle_energy: &F,
    memo: &mut Memo,
) -> (f64, u64) {
    if i == records.len() {
        // Trailing idle on every disk.
        let trailing: f64 = last_active
            .iter()
            .map(|&t| idle_energy(end.saturating_since(SimTime::from_micros(t))).as_joules())
            .sum();
        return (trailing, 0);
    }
    let key = (i, cache.clone(), last_active.clone());
    if let Some(&hit) = memo.get(&key) {
        return hit;
    }

    let (time, block) = records[i];
    let result = if cache.contains(&block) {
        search(
            i + 1,
            cache,
            last_active,
            records,
            capacity,
            end,
            service_energy,
            idle_energy,
            memo,
        )
    } else {
        // Miss: the disk becomes active now.
        let d = block.disk().as_usize();
        let gap = time.saturating_since(SimTime::from_micros(last_active[d]));
        let miss_cost = idle_energy(gap).as_joules() + service_energy;
        let saved_last = last_active[d];
        last_active[d] = last_active[d].max(time.as_micros());

        let mut best = (f64::INFINITY, 0u64);
        if cache.len() < capacity {
            insert_sorted(cache, block);
            let (e, m) = search(
                i + 1,
                cache,
                last_active,
                records,
                capacity,
                end,
                service_energy,
                idle_energy,
                memo,
            );
            remove_sorted(cache, block);
            if e < best.0 {
                best = (e, m);
            }
        } else {
            for v in 0..cache.len() {
                let victim = cache[v];
                remove_sorted(cache, victim);
                insert_sorted(cache, block);
                let (e, m) = search(
                    i + 1,
                    cache,
                    last_active,
                    records,
                    capacity,
                    end,
                    service_energy,
                    idle_energy,
                    memo,
                );
                remove_sorted(cache, block);
                insert_sorted(cache, victim);
                if e < best.0 {
                    best = (e, m);
                }
            }
        }
        last_active[d] = saved_last;
        (best.0 + miss_cost, best.1 + 1)
    };

    memo.insert(key, result);
    result
}

fn insert_sorted(cache: &mut Vec<BlockId>, block: BlockId) {
    let pos = cache.partition_point(|&b| b < block);
    cache.insert(pos, block);
}

fn remove_sorted(cache: &mut Vec<BlockId>, block: BlockId) {
    let pos = cache.partition_point(|&b| b < block);
    debug_assert_eq!(cache.get(pos), Some(&block));
    cache.remove(pos);
}

/// The worked example of the paper's Figure 3: requests
/// `A B C D E B E C D … A` on a 4-entry cache over a 2-mode disk with a
/// 10-time-unit spin-down threshold. Returns the trace (1 block = 1
/// letter, A=1 … E=5) with one access per paper time unit (1 unit = 1 s).
#[must_use]
pub fn figure3_trace() -> Trace {
    use pc_trace::{IoOp, Record};
    use pc_units::{BlockNo, DiskId};
    let blk = |n: u64| BlockId::new(DiskId::new(0), BlockNo::new(n));
    let seq: [(u64, u64); 10] = [
        (0, 1),  // A
        (1, 2),  // B
        (2, 3),  // C
        (3, 4),  // D
        (4, 5),  // E
        (5, 2),  // B
        (6, 5),  // E
        (7, 3),  // C
        (8, 4),  // D
        (16, 1), // A
    ];
    let mut t = Trace::new(1);
    for (s, b) in seq {
        t.push(Record::new(SimTime::from_secs(s), blk(b), IoOp::Read));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Belady;
    use crate::{BlockCache, WritePolicy};
    use pc_trace::IoOp;

    /// Figure-3 idle model: 1 W at speed, 0 W spun down, 10 s threshold.
    fn fig3_energy() -> impl Fn(SimDuration) -> Joules {
        threshold_energy(Watts::new(1.0), Watts::new(0.0), SimDuration::from_secs(10))
    }

    /// Runs a policy over the Figure-3 trace and returns (energy, misses).
    fn run_policy(cache: &mut BlockCache, horizon: SimTime) -> (Joules, u64) {
        let t = figure3_trace();
        let mut miss_times = Vec::new();
        for r in &t {
            if !cache.access_alloc(r, |_| false).hit {
                miss_times.push(r.time);
            }
        }
        let e = miss_sequence_energy(&miss_times, horizon, Joules::ZERO, &fig3_energy());
        (e, miss_times.len() as u64)
    }

    #[test]
    fn figure3_belady_is_not_energy_optimal() {
        let t = figure3_trace();
        let horizon = SimTime::from_secs(30);
        let mut belady = BlockCache::new(4, Box::new(Belady::new(&t)), WritePolicy::WriteBack);
        let (belady_energy, belady_misses) = run_policy(&mut belady, horizon);
        let optimal = min_energy(&t, 4, horizon, Joules::ZERO, &fig3_energy());
        // Belady minimizes misses (6 here)…
        assert_eq!(belady_misses, 6);
        // …but strictly loses on energy to a schedule with more misses.
        assert!(
            optimal.energy < belady_energy,
            "optimal {} vs belady {}",
            optimal.energy,
            belady_energy
        );
        assert!(optimal.misses > belady_misses);
        // Paper's areas: Belady ≈ 24 J, the alternative ≈ 16 J.
        assert!((belady_energy.as_joules() - 24.0).abs() < 1e-6);
        assert!((optimal.energy.as_joules() - 16.0).abs() < 1e-6);
    }

    #[test]
    fn optimal_never_exceeds_any_concrete_policy() {
        let t = figure3_trace();
        let horizon = SimTime::from_secs(30);
        for capacity in [2usize, 3, 4] {
            let optimal = min_energy(&t, capacity, horizon, Joules::ZERO, &fig3_energy());
            let mut lru = BlockCache::new(
                capacity,
                Box::new(crate::policy::Lru::new()),
                WritePolicy::WriteBack,
            );
            let (lru_energy, _) = run_policy(&mut lru, horizon);
            assert!(
                optimal.energy <= lru_energy + Joules::new(1e-9),
                "cap {capacity}: optimal {} lru {lru_energy}",
                optimal.energy
            );
        }
    }

    #[test]
    fn miss_sequence_energy_accounts_trailing_idle() {
        let e = fig3_energy();
        // No activity at all: one trailing gap from 0 to 30 → 10 J.
        let none = miss_sequence_energy(&[], SimTime::from_secs(30), Joules::ZERO, &e);
        assert!((none.as_joules() - 10.0).abs() < 1e-9);
        // Activity at 5 and 8: gaps 5, 3, 22 → 5 + 3 + 10 = 18.
        let some = miss_sequence_energy(
            &[SimTime::from_secs(5), SimTime::from_secs(8)],
            SimTime::from_secs(30),
            Joules::ZERO,
            &e,
        );
        assert!((some.as_joules() - 18.0).abs() < 1e-9);
        // Service energy counts per activity.
        let svc = miss_sequence_energy(
            &[SimTime::from_secs(5)],
            SimTime::from_secs(5),
            Joules::new(2.0),
            &e,
        );
        assert!((svc.as_joules() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn service_energy_steers_the_optimum_toward_fewer_misses() {
        let t = figure3_trace();
        let horizon = SimTime::from_secs(30);
        // With a huge per-miss cost, the optimum is miss-minimal (= MIN).
        let heavy = min_energy(&t, 4, horizon, Joules::new(1_000.0), &fig3_energy());
        assert_eq!(heavy.misses, 6);
    }

    #[test]
    fn opg_never_beats_the_exact_optimum_on_tiny_traces() {
        // Property: OPG's schedule is one of the demand-paging schedules
        // `min_energy` searches over, so its evaluated energy can never
        // fall below the exact optimum — under either pricing mode, on
        // randomized tiny multi-disk traces. A violation means either the
        // cache drove OPG outside the demand-paging space or the exact
        // search is missing schedules.
        use crate::policy::{Opg, OpgDpm};
        use pc_diskmodel::{DiskPowerSpec, PowerModel};
        use pc_trace::{IoOp, Record};
        use pc_units::{BlockNo, DiskId};

        let e = fig3_energy();
        let mut state = 0x0D15_C0DEu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..40 {
            let disks = 2u32;
            let len = 8 + (rng() % 5) as usize; // 8..=12 accesses
            let mut t = Trace::new(disks);
            let mut time = 0u64;
            for _ in 0..len {
                time += 1 + rng() % 8; // strictly increasing, 1..=8 s gaps
                let block = BlockId::new(
                    DiskId::new((rng() % u64::from(disks)) as u32),
                    BlockNo::new(rng() % 4),
                );
                t.push(Record::new(SimTime::from_secs(time), block, IoOp::Read));
            }
            let capacity = 2 + (rng() % 2) as usize;
            let horizon = SimTime::from_secs(time + 15);
            let optimal = min_energy(&t, capacity, horizon, Joules::ZERO, &e);
            for dpm in [OpgDpm::Oracle, OpgDpm::Practical] {
                let power = PowerModel::multi_speed(&DiskPowerSpec::ultrastar_36z15());
                let opg = Opg::new(&t, power, dpm, Joules::ZERO);
                let mut cache = BlockCache::new(capacity, Box::new(opg), WritePolicy::WriteBack);
                let mut per_disk: Vec<Vec<SimTime>> = vec![Vec::new(); disks as usize];
                for r in &t {
                    if !cache.access_alloc(r, |_| false).hit {
                        per_disk[r.block.disk().as_usize()].push(r.time);
                    }
                }
                let opg_energy = per_disk.iter().fold(Joules::ZERO, |acc, activities| {
                    acc + miss_sequence_energy(activities, horizon, Joules::ZERO, &e)
                });
                assert!(
                    optimal.energy <= opg_energy + Joules::new(1e-9),
                    "case {case} {dpm:?} cap {capacity}: optimal {} beat by opg {opg_energy}",
                    optimal.energy
                );
            }
        }
    }

    #[test]
    fn multi_disk_instances_search_correctly() {
        use pc_trace::Record;
        use pc_units::{BlockNo, DiskId};
        let blk = |d: u32, n: u64| BlockId::new(DiskId::new(d), BlockNo::new(n));
        let mut t = Trace::new(2);
        for (s, d, b) in [
            (0u64, 0u32, 1u64),
            (1, 1, 9),
            (2, 0, 2),
            (3, 0, 1),
            (20, 1, 9),
        ] {
            t.push(Record::new(SimTime::from_secs(s), blk(d, b), IoOp::Read));
        }
        let r = min_energy(&t, 2, SimTime::from_secs(40), Joules::ZERO, &fig3_energy());
        // Keeping disk 1's block cached lets disk 1 sleep from t=1 on; the
        // optimum must hold (1,9) through t=20 (3 cold + 1 capacity miss).
        assert!(r.misses <= 4);
    }
}
