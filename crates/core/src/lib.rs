//! Power-aware storage cache management — the primary contribution of
//! *Reducing Energy Consumption of Disk Storage Using Power-Aware Cache
//! Management* (Zhu et al., HPCA 2004), reimplemented as a library.
//!
//! # What's here
//!
//! * [`BlockCache`] — a storage (second-level) block cache with pluggable
//!   replacement and write policies. Misses, write-backs and flushes are
//!   returned as [`Effect`]s for the surrounding simulator (or a real
//!   storage controller) to execute.
//! * Replacement policies ([`ReplacementPolicy`]):
//!   [`Lru`](policy::Lru), [`Fifo`](policy::Fifo),
//!   [`Belady`](policy::Belady) (offline MIN),
//!   [`Opg`](policy::Opg) (the paper's off-line power-aware greedy
//!   algorithm, §3.2) and [`PaLru`](policy::PaLru) (the paper's on-line
//!   power-aware LRU, §4).
//! * Write policies ([`WritePolicy`]): write-through, write-back, WBEU
//!   (write-back with eager update) and WTDU (write-through with deferred
//!   update via a persistent per-disk log, §6), including WTDU's
//!   timestamped crash-recovery protocol ([`wtdu`]).
//! * Supporting structures: a [`BloomFilter`] for cold-miss detection and
//!   an [`IntervalHistogram`] approximating the inter-arrival CDF
//!   (Figure 5), both used by PA-LRU's per-disk workload classifier.
//! * [`optimal`] — an exact minimum-energy replacement schedule for tiny
//!   instances (the paper's energy-optimal algorithm stands in a tech
//!   report; this exhaustive version serves as a test oracle and
//!   regenerates the Figure-3 counterexample).
//!
//! # Examples
//!
//! ```
//! use pc_cache::policy::Lru;
//! use pc_cache::{BlockCache, WritePolicy};
//! use pc_trace::{IoOp, Record};
//! use pc_units::{BlockId, BlockNo, DiskId, SimTime};
//!
//! let mut cache = BlockCache::new(2, Box::new(Lru::new()), WritePolicy::WriteBack);
//! let block = BlockId::new(DiskId::new(0), BlockNo::new(9));
//! // A reusable scratch buffer receives each access's disk-side effects,
//! // keeping the per-request loop allocation-free.
//! let mut effects = Vec::new();
//! let miss = cache.access(
//!     &Record::new(SimTime::ZERO, block, IoOp::Read),
//!     |_| false, // no disk is asleep
//!     &mut effects,
//! );
//! assert!(!miss.hit);
//! let hit = cache.access(
//!     &Record::new(SimTime::from_millis(1), block, IoOp::Read),
//!     |_| false,
//!     &mut effects,
//! );
//! assert!(hit.hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod bloom;
mod cache;
mod effects;
mod histogram;
mod offline;
pub mod optimal;
pub mod policy;
mod table;
pub mod wtdu;

pub use bloom::BloomFilter;
pub use cache::{BlockCache, CacheStats};
pub use effects::{AccessOutcome, AccessResult, Effect, WritePolicy};
pub use histogram::IntervalHistogram;
pub use offline::OfflineIndex;
pub use policy::{MetaStats, ReplacementPolicy};
pub use table::{BlockTable, Slot};
