//! Cache write policies and the disk-side effects the cache emits.

use pc_units::BlockId;

/// A storage-cache write policy (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write dirty data to disk immediately; the cache never holds dirty
    /// blocks.
    WriteThrough,
    /// Hold dirty blocks and write them back only on eviction.
    WriteBack,
    /// Write-back with eager update: additionally flush a disk's dirty
    /// blocks whenever that disk becomes active for a read miss, and
    /// force-flush once a disk accumulates more than `dirty_limit` dirty
    /// blocks.
    Wbeu {
        /// Maximum dirty blocks a single disk may accumulate before a
        /// forced flush (which wakes the disk).
        dirty_limit: usize,
    },
    /// Write-through with deferred update: writes to a sleeping disk go to
    /// a per-disk log region on an always-active persistent device and are
    /// replayed to their true destination when the disk next becomes
    /// active. Provides write-through-grade persistence (see
    /// [`wtdu`](crate::wtdu) for the recovery protocol).
    Wtdu,
}

impl WritePolicy {
    /// Short lowercase name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WritePolicy::WriteThrough => "write-through",
            WritePolicy::WriteBack => "write-back",
            WritePolicy::Wbeu { .. } => "wbeu",
            WritePolicy::Wtdu => "wtdu",
        }
    }
}

/// A disk-side action the cache asks its host (simulator or controller)
/// to perform, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Fetch a block from its disk (read miss).
    ReadDisk(BlockId),
    /// Write a block to its home disk (write-through, write-back eviction,
    /// or a flush).
    WriteDisk(BlockId),
    /// Append a block's new contents to the persistent log device (WTDU).
    WriteLog(BlockId),
}

impl Effect {
    /// The block the effect concerns.
    #[must_use]
    pub fn block(&self) -> BlockId {
        match *self {
            Effect::ReadDisk(b) | Effect::WriteDisk(b) | Effect::WriteLog(b) => b,
        }
    }
}

/// The outcome of one cache access (scratch-buffer API).
///
/// The disk-side effects of the access live in the caller-provided
/// scratch buffer, keeping the per-request hot path allocation-free;
/// this struct carries only the `Copy` summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Whether the access hit in the cache.
    pub hit: bool,
    /// The block evicted to make room, if any (the first one, for
    /// multi-block requests).
    pub evicted: Option<BlockId>,
}

/// The outcome of one cache access with owned effects, returned by the
/// allocating convenience wrapper
/// [`BlockCache::access_alloc`](crate::BlockCache::access_alloc).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessResult {
    /// Whether the access hit in the cache.
    pub hit: bool,
    /// The block evicted to make room, if any.
    pub evicted: Option<BlockId>,
    /// Disk-side actions to perform, in order.
    pub effects: Vec<Effect>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_units::{BlockNo, DiskId};

    #[test]
    fn effect_block_extraction() {
        let b = BlockId::new(DiskId::new(1), BlockNo::new(2));
        assert_eq!(Effect::ReadDisk(b).block(), b);
        assert_eq!(Effect::WriteDisk(b).block(), b);
        assert_eq!(Effect::WriteLog(b).block(), b);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(WritePolicy::WriteThrough.name(), "write-through");
        assert_eq!(WritePolicy::Wbeu { dirty_limit: 8 }.name(), "wbeu");
        assert_eq!(WritePolicy::Wtdu.name(), "wtdu");
        assert_eq!(WritePolicy::WriteBack.name(), "write-back");
    }
}
