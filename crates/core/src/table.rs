//! Slot interning: dense integer handles for resident blocks.
//!
//! Every hot-path structure in the cache core — per-block flags, the
//! replacement policies' recency lists — wants O(1) array indexing, but
//! the cache is addressed by sparse [`BlockId`]s. The [`BlockTable`]
//! bridges the two: it interns a `BlockId` to a dense [`Slot`] on
//! admission and recycles the slot through a free list on eviction, so a
//! cache of capacity `c` never hands out a slot ≥ `c` and every
//! slot-indexed `Vec` stays exactly as large as the resident set.
//!
//! The table performs the *single* hash lookup of the per-access hot
//! path (an FxHash map — every other structure indexes by slot). The
//! same type doubles as the ghost directory inside policies that
//! remember evicted blocks (2Q, MQ, ARC, LIRS): a ghost table interns
//! evicted block ids into its own slot space, with the same free-list
//! reuse.

use rustc_hash::FxHashMap;

use pc_units::BlockId;

/// A dense index for an interned block, valid until released.
///
/// Slots are plain `u32` newtypes: small enough to pack into intrusive
/// list links, cheap to copy, and meaningless outside the
/// [`BlockTable`] (or policy) that issued them.
///
/// # Examples
///
/// ```
/// use pc_cache::Slot;
///
/// let s = Slot::new(3);
/// assert_eq!(s.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slot(u32);

impl Slot {
    /// Creates a slot from its raw index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Slot(index)
    }

    /// The raw index, for direct slice indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// Interns [`BlockId`]s to dense [`Slot`]s with free-list reuse.
///
/// # Examples
///
/// ```
/// use pc_cache::BlockTable;
/// use pc_units::{BlockId, BlockNo, DiskId};
///
/// let blk = |n| BlockId::new(DiskId::new(0), BlockNo::new(n));
/// let mut table = BlockTable::new();
/// let a = table.intern(blk(10));
/// let b = table.intern(blk(20));
/// assert_ne!(a, b);
/// assert_eq!(table.lookup(blk(10)), Some(a));
/// assert_eq!(table.block_of(a), blk(10));
/// table.release(a);
/// // The freed slot is recycled for the next admission.
/// assert_eq!(table.intern(blk(30)), a);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockTable {
    /// The one hash map of the hot path.
    slot_of: FxHashMap<BlockId, u32>,
    /// Reverse map: slot → interned block (valid while the slot is live).
    blocks: Vec<BlockId>,
    /// Released slots awaiting reuse, LIFO.
    free: Vec<u32>,
}

impl BlockTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        BlockTable::default()
    }

    /// The slot `block` is interned at, if it currently is.
    #[must_use]
    pub fn lookup(&self, block: BlockId) -> Option<Slot> {
        self.slot_of.get(&block).map(|&i| Slot(i))
    }

    /// Interns `block`, reusing a released slot when one exists. Returns
    /// the existing slot if the block is already interned.
    pub fn intern(&mut self, block: BlockId) -> Slot {
        if let Some(&i) = self.slot_of.get(&block) {
            return Slot(i);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.blocks[i as usize] = block;
                i
            }
            None => {
                let i = u32::try_from(self.blocks.len()).expect("slot space exhausted");
                self.blocks.push(block);
                i
            }
        };
        self.slot_of.insert(block, i);
        Slot(i)
    }

    /// Releases a live slot back to the free list.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not live (double release or a foreign slot).
    pub fn release(&mut self, slot: Slot) {
        let block = self.blocks[slot.index()];
        let removed = self.slot_of.remove(&block);
        assert_eq!(removed, Some(slot.0), "released a slot that is not live");
        self.free.push(slot.0);
    }

    /// The block interned at a live `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never issued.
    #[must_use]
    pub fn block_of(&self, slot: Slot) -> BlockId {
        self.blocks[slot.index()]
    }

    /// Number of live (interned) blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// Returns `true` if no block is interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Upper bound (exclusive) on the raw index of any slot ever issued.
    /// Slot-indexed side tables are safe at this length.
    #[must_use]
    pub fn slot_bound(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_units::{BlockNo, DiskId};

    fn blk(disk: u32, no: u64) -> BlockId {
        BlockId::new(DiskId::new(disk), BlockNo::new(no))
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = BlockTable::new();
        let a = t.intern(blk(0, 1));
        assert_eq!(t.intern(blk(0, 1)), a);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn slots_are_dense_from_zero() {
        let mut t = BlockTable::new();
        for n in 0..10u64 {
            assert_eq!(t.intern(blk(0, n)).index(), n as usize);
        }
        assert_eq!(t.slot_bound(), 10);
    }

    #[test]
    fn free_list_bounds_slot_space_under_churn() {
        // A capacity-4 cache pattern: intern 4, then alternate
        // release/intern for thousands of rounds. The slot space must
        // never exceed the high-water residency.
        let mut t = BlockTable::new();
        let mut live: Vec<Slot> = (0..4).map(|n| t.intern(blk(0, n))).collect();
        for round in 0..10_000u64 {
            let victim = live.remove((round % 4) as usize);
            t.release(victim);
            let incoming = t.intern(blk(0, 100 + round));
            assert!(
                incoming.index() < 4,
                "slot {incoming} escaped the free list"
            );
            live.push(incoming);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.slot_bound(), 4, "no slot beyond the high-water mark");
    }

    #[test]
    fn release_forgets_the_block() {
        let mut t = BlockTable::new();
        let a = t.intern(blk(1, 7));
        t.release(a);
        assert_eq!(t.lookup(blk(1, 7)), None);
        assert!(t.is_empty());
        // The slot is recycled for a different block.
        let b = t.intern(blk(2, 9));
        assert_eq!(b, a);
        assert_eq!(t.block_of(b), blk(2, 9));
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_release_panics() {
        let mut t = BlockTable::new();
        let a = t.intern(blk(0, 1));
        t.release(a);
        t.release(a);
    }
}
