//! First-party CRC32C (Castagnoli, reflected polynomial `0x82F63B78`)
//! for the payload data plane.
//!
//! The hot kernel is [`crc32c`], a portable slice-by-8 implementation:
//! eight 256-entry tables (built at compile time by a `const fn`, so
//! there is no runtime init and no lazy statics) let the inner loop
//! fold eight input bytes per iteration with eight independent table
//! loads and no data-dependent chain beyond the single XOR combine.
//! On the block sizes the server moves (4 KiB) this runs several times
//! faster than the textbook bit-at-a-time loop while producing the
//! same value for every input — a property the tests pin by
//! cross-checking against [`crc32c_bitwise`] over randomized lengths
//! and alignments.
//!
//! Everything here is `#![forbid(unsafe_code)]` and dependency-free;
//! the workspace builds air-gapped.
//!
//! # Examples
//!
//! ```
//! // Known-answer vector from RFC 3720 (iSCSI).
//! assert_eq!(pc_crc::crc32c(b"123456789"), 0xE306_9283);
//! // Streaming: split input gives the same digest.
//! let whole = pc_crc::crc32c(b"hello world");
//! let part = pc_crc::crc32c_append(pc_crc::crc32c(b"hello "), b"world");
//! assert_eq!(whole, part);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The CRC32C (Castagnoli) generator polynomial, reflected.
pub const POLY: u32 = 0x82F6_3B78;

/// Slice-by-8 lookup tables. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` is the CRC contribution of byte `b` positioned
/// `k` bytes before the end of an 8-byte group.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][b] = crc;
        b += 1;
    }
    let mut t = 1usize;
    while t < 8 {
        let mut b = 0usize;
        while b < 256 {
            let prev = tables[t - 1][b];
            tables[t][b] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            b += 1;
        }
        t += 1;
    }
    tables
}

/// CRC32C of `data` (initial value 0, final XOR applied — the common
/// "one-shot" convention shared by iSCSI, ext4 and friends).
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Extends a previously computed [`crc32c`] digest with more bytes, as
/// if the concatenated input had been hashed in one call.
#[inline]
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        // One 8-byte load, then fold the running CRC into the low half
        // and look up all eight byte contributions independently: no
        // per-byte serial dependency, which is the whole point of
        // slice-by-8. (`try_into` on an exact chunk compiles to a
        // single unaligned u64 load, not eight byte loads.)
        let word = u64::from_le_bytes(chunk.try_into().unwrap());
        let lo = crc ^ (word as u32);
        let hi = (word >> 32) as u32;
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Textbook bit-at-a-time CRC32C. The correctness oracle for the
/// slice-by-8 kernel and the baseline of the criterion `crc` bench
/// group; never used on a hot path.
pub fn crc32c_bitwise(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic generator for randomized cross-checks —
    /// splitmix64, no external RNG needed.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn known_answer_vectors() {
        // RFC 3720 B.4 test patterns plus the classic check value.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32u8).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0..32u8).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }

    #[test]
    fn slice_by_8_matches_bitwise_over_randomized_lengths_and_alignments() {
        let mut rng = Mix(42);
        let mut backing = vec![0u8; 4096 + 64];
        for byte in backing.iter_mut() {
            *byte = rng.next() as u8;
        }
        for trial in 0..200 {
            let start = (rng.next() % 64) as usize;
            let len = (rng.next() % 4097) as usize;
            let slice = &backing[start..start + len];
            assert_eq!(
                crc32c(slice),
                crc32c_bitwise(slice),
                "trial {trial}: start={start} len={len}"
            );
        }
    }

    #[test]
    fn append_is_equivalent_to_one_shot_at_every_split_point() {
        let data: Vec<u8> = (0..255u8).collect();
        let whole = crc32c(&data);
        for split in 0..=data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32c_append(crc32c(a), b), whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_change_the_digest() {
        let data = vec![0xA5u8; 512];
        let clean = crc32c(&data);
        let mut rng = Mix(7);
        for _ in 0..64 {
            let mut corrupt = data.clone();
            let bit = (rng.next() % (512 * 8)) as usize;
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&corrupt), clean, "flip of bit {bit} went undetected");
        }
    }
}
