#!/usr/bin/env bash
# One loopback smoke cycle, shared by every smoke job in ci.yml:
#
#   boot pc-server -> drive pc-loadgen -> assert patterns against both
#   logs -> SIGTERM the server -> assert a graceful drain.
#
# Logs land in $NAME-server.log / $NAME-loadgen.log (cwd), and both are
# dumped whenever the cycle fails, so a red CI step always shows the
# evidence. The drain assertions ("pc-server drained" plus the closing
# "total" table row) run on every cycle; everything else is opt-in via
# flags:
#
#   --name NAME                log prefix (required)
#   --port N                   loopback port for both sides (required)
#   --server-args "..."        extra pc-server flags (word-split)
#   --loadgen-args "..."       pc-loadgen flags after --addr (word-split)
#   --allow-loadgen-failure    tolerate a non-zero loadgen exit (jobs
#                              where exhausted retries / CORRUPT replies
#                              are the point assert on the log instead)
#   --expect-loadgen REGEX     grep -E the loadgen log (repeatable)
#   --expect-server REGEX      grep -E the server log, post-drain
#                              (repeatable)
#   --min-rate N               floor on the loadgen's closing rate= value
#   --ulimit-files N           raise the fd limit before booting
set -euo pipefail

NAME=""
PORT=""
SERVER_ARGS=""
LOADGEN_ARGS=""
ALLOW_LOADGEN_FAILURE=0
EXPECT_LOADGEN=()
EXPECT_SERVER=()
MIN_RATE=""
ULIMIT_FILES=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --name) NAME=$2; shift 2 ;;
    --port) PORT=$2; shift 2 ;;
    --server-args) SERVER_ARGS=$2; shift 2 ;;
    --loadgen-args) LOADGEN_ARGS=$2; shift 2 ;;
    --allow-loadgen-failure) ALLOW_LOADGEN_FAILURE=1; shift ;;
    --expect-loadgen) EXPECT_LOADGEN+=("$2"); shift 2 ;;
    --expect-server) EXPECT_SERVER+=("$2"); shift 2 ;;
    --min-rate) MIN_RATE=$2; shift 2 ;;
    --ulimit-files) ULIMIT_FILES=$2; shift 2 ;;
    *) echo "smoke.sh: unknown flag $1" >&2; exit 2 ;;
  esac
done

[[ -n "$NAME" && -n "$PORT" ]] || { echo "smoke.sh: --name and --port are required" >&2; exit 2; }

SERVER_LOG="$NAME-server.log"
LOADGEN_LOG="$NAME-loadgen.log"
SERVER_PID=""

dump_logs() {
  echo "=== $SERVER_LOG ==="
  cat "$SERVER_LOG" || true
  echo "=== $LOADGEN_LOG ==="
  cat "$LOADGEN_LOG" || true
}

fail() {
  echo "smoke[$NAME] FAIL: $*" >&2
  dump_logs
  [[ -n "$SERVER_PID" ]] && kill -KILL "$SERVER_PID" 2>/dev/null
  exit 1
}

if [[ -n "$ULIMIT_FILES" ]]; then
  ulimit -n "$ULIMIT_FILES"
fi

# shellcheck disable=SC2086  # word-splitting the arg strings is the API
./target/release/pc-server --addr "127.0.0.1:$PORT" $SERVER_ARGS > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!
sleep 1
kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; fail "server died before accepting load"; }

# shellcheck disable=SC2086
if ./target/release/pc-loadgen --addr "127.0.0.1:$PORT" $LOADGEN_ARGS > "$LOADGEN_LOG" 2>&1; then
  :
elif [[ "$ALLOW_LOADGEN_FAILURE" -ne 1 ]]; then
  fail "pc-loadgen exited non-zero"
fi

for pattern in ${EXPECT_LOADGEN[@]+"${EXPECT_LOADGEN[@]}"}; do
  grep -Eq "$pattern" "$LOADGEN_LOG" || fail "loadgen log missing: $pattern"
done

if [[ -n "$MIN_RATE" ]]; then
  RATE=$(grep -oE "rate=[0-9]+" "$LOADGEN_LOG" | head -1 | cut -d= -f2)
  [[ -n "$RATE" ]] || fail "loadgen log has no rate= line"
  [[ "$RATE" -ge "$MIN_RATE" ]] || fail "rate $RATE below floor $MIN_RATE"
fi

kill -TERM "$SERVER_PID"
# A graceful drain exits 0; a hang is caught by the job timeout.
wait "$SERVER_PID" || fail "server exited non-zero after SIGTERM"
SERVER_PID=""

grep -q "pc-server drained" "$SERVER_LOG" || fail "no graceful drain line"
grep -q "^total" "$SERVER_LOG" || fail "no closing total row"
for pattern in ${EXPECT_SERVER[@]+"${EXPECT_SERVER[@]}"}; do
  grep -Eq "$pattern" "$SERVER_LOG" || fail "server log missing: $pattern"
done

dump_logs
echo "smoke[$NAME] ok"
